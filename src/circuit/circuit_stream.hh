/**
 * @file
 * Pull-based gate streams: the input representation of the streaming
 * compile path. A `CircuitStream` yields a circuit's gates in order
 * without requiring the circuit to be materialized, so a 10^6-qubit
 * workload enters the pipeline through an O(window) buffer instead
 * of an O(gates) vector.
 *
 * Streams are *replayable*: `reset()` rewinds to the first gate, and
 * the library relies on it — cache-key computation drains the stream
 * once to hash it, the compile drains it again, and differential
 * harnesses drain it as often as they re-compile. Implementations
 * therefore derive gates from O(1) state (a wrapped vector cursor, a
 * closed-form index function) rather than consuming an external
 * source.
 *
 * The gate sequence of a stream is part of compile identity: two
 * drains of the same stream must yield byte-identical gate
 * sequences, and `totalGates()` must equal exactly the number of
 * gates a full drain yields.
 */

#ifndef DCMBQC_CIRCUIT_CIRCUIT_STREAM_HH
#define DCMBQC_CIRCUIT_CIRCUIT_STREAM_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "circuit/circuit.hh"

namespace dcmbqc
{

/** An ordered gate sequence delivered window by window. */
class CircuitStream
{
  public:
    virtual ~CircuitStream() = default;

    /** Display/report label of the streamed program. */
    virtual const std::string &name() const = 0;

    /** Qubit count of the streamed program (fixed). */
    virtual int numQubits() const = 0;

    /** Exact number of gates a full drain yields. */
    virtual std::uint64_t totalGates() const = 0;

    /**
     * Append up to `max_gates` next gates to `out` (which is not
     * cleared). Returns the number appended; 0 means the stream is
     * exhausted. `max_gates` = 0 is invalid.
     */
    virtual std::size_t next(std::size_t max_gates,
                             std::vector<Gate> &out) = 0;

    /** Rewind to the first gate. */
    virtual void reset() = 0;

    /**
     * Drain (from the start) into a materialized Circuit — the
     * bridge to the monolithic oracle path and to --save-circuit.
     * Leaves the stream exhausted.
     */
    Circuit materialize();
};

/**
 * Stream view over a materialized circuit. Borrows the circuit (the
 * owner must outlive the stream) — this is the adapter the driver
 * uses to push a Circuit-entry request through the windowed front
 * end without copying the gate list.
 */
class VectorCircuitStream final : public CircuitStream
{
  public:
    explicit VectorCircuitStream(const Circuit &circuit)
        : circuit_(&circuit)
    {
    }

    const std::string &name() const override
    {
        return circuit_->name();
    }

    int numQubits() const override { return circuit_->numQubits(); }

    std::uint64_t totalGates() const override
    {
        return circuit_->numGates();
    }

    std::size_t next(std::size_t max_gates,
                     std::vector<Gate> &out) override;

    void reset() override { cursor_ = 0; }

  private:
    const Circuit *circuit_;
    std::size_t cursor_ = 0;
};

/**
 * Stream whose i-th gate is computed by a pure index function —
 * the O(1)-state representation the huge-circuit generator families
 * use. The callback must be deterministic in its index.
 */
class GeneratorCircuitStream final : public CircuitStream
{
  public:
    using GateAt = std::function<Gate(std::uint64_t index)>;

    GeneratorCircuitStream(std::string name, int num_qubits,
                           std::uint64_t total_gates, GateAt gate_at)
        : name_(std::move(name)),
          numQubits_(num_qubits),
          totalGates_(total_gates),
          gateAt_(std::move(gate_at))
    {
    }

    const std::string &name() const override { return name_; }
    int numQubits() const override { return numQubits_; }
    std::uint64_t totalGates() const override { return totalGates_; }

    std::size_t next(std::size_t max_gates,
                     std::vector<Gate> &out) override;

    void reset() override { cursor_ = 0; }

  private:
    std::string name_;
    int numQubits_;
    std::uint64_t totalGates_;
    GateAt gateAt_;
    std::uint64_t cursor_ = 0;
};

} // namespace dcmbqc

#endif // DCMBQC_CIRCUIT_CIRCUIT_STREAM_HH
