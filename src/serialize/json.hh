/**
 * @file
 * Human-readable JSON writers for the serialized IR types — the
 * inspection side of the artifact subsystem (`dcmbqc inspect`).
 * Writing only: artifacts interchange in the binary format; JSON is
 * for humans and downstream tooling (jq, dashboards).
 */

#ifndef DCMBQC_SERIALIZE_JSON_HH
#define DCMBQC_SERIALIZE_JSON_HH

#include <string>

#include "api/driver.hh"
#include "circuit/circuit.hh"
#include "compiler/execution_layer.hh"
#include "core/pipeline.hh"
#include "exec/result.hh"
#include "mbqc/pattern.hh"

namespace dcmbqc
{

/**
 * Minimal streaming JSON emitter with two-space indentation.
 * Call sequence is the caller's responsibility (no schema checks);
 * strings are escaped per RFC 8259.
 */
class JsonWriter
{
  public:
    std::string take() { return std::move(out_); }

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Member key; must be followed by a value or container. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &text);
    JsonWriter &value(const char *text);
    JsonWriter &value(double number);
    JsonWriter &value(long long number);
    JsonWriter &value(int number) { return value((long long)number); }
    JsonWriter &value(unsigned long long number);
    JsonWriter &value(bool flag);

  private:
    void prefix();
    void newline();

    std::string out_;
    int depth_ = 0;
    bool firstInScope_ = true;
    bool afterKey_ = false;
};

/** Escape a string for embedding in JSON output. */
std::string jsonEscape(const std::string &text);

// Pretty-printers for every artifact payload type --------------------------
std::string toJson(const Circuit &circuit);
std::string toJson(const Pattern &pattern);
std::string toJson(const DcMbqcConfig &config);
std::string toJson(const LocalSchedule &schedule);
std::string toJson(const Schedule &schedule);
std::string toJson(const CompileReport &report);
std::string toJson(const Graph &graph);
std::string toJson(const Digraph &digraph);
std::string toJson(const ExecResult &result);

} // namespace dcmbqc

#endif // DCMBQC_SERIALIZE_JSON_HH
