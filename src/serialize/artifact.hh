/**
 * @file
 * The on-disk artifact envelope shared by every serialized IR type
 * and by the compile cache's disk tier:
 *
 *   offset  size  field
 *        0     4  magic "DCMB"
 *        4     2  format version (little-endian u16, currently 1)
 *        6     2  artifact kind tag (u16)
 *        8     8  payload size in bytes (u64)
 *       16     n  payload (kind-specific codec, serialize/codecs.hh)
 *     16+n     8  FNV-1a 64 checksum of the payload
 *
 * `openArtifact` rejects bad magic, unsupported versions, truncated
 * buffers and checksum mismatches through the Status channel, so a
 * corrupted or foreign file never reaches a payload codec.
 */

#ifndef DCMBQC_SERIALIZE_ARTIFACT_HH
#define DCMBQC_SERIALIZE_ARTIFACT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "api/status.hh"

namespace dcmbqc
{

/** Current artifact format version. */
inline constexpr std::uint16_t artifactFormatVersion = 1;

/** Payload type stored in an artifact envelope. */
enum class ArtifactKind : std::uint16_t
{
    Circuit = 1,
    Graph = 2,
    Digraph = 3,
    Pattern = 4,
    Config = 5,
    LocalSchedule = 6,
    Schedule = 7,
    CompileReport = 8,
    ExecResult = 9,
    NoiseConfig = 10,
};

/** Stable display name of an artifact kind ("circuit", ...). */
const char *artifactKindName(ArtifactKind kind);

/** A validated, borrowed view into an artifact buffer. */
struct ArtifactView
{
    ArtifactKind kind = ArtifactKind::Circuit;
    std::uint16_t version = artifactFormatVersion;
    const std::uint8_t *payload = nullptr;
    std::size_t payloadSize = 0;
    std::uint64_t checksum = 0;
};

/** Wrap a payload into a checksummed envelope. */
std::vector<std::uint8_t>
sealArtifact(ArtifactKind kind,
             const std::vector<std::uint8_t> &payload);

/**
 * Validate an envelope (magic, version, sizes, checksum) and return
 * a view into `data`, which must outlive the view.
 */
Expected<ArtifactView> openArtifact(const std::uint8_t *data,
                                    std::size_t size);

Expected<ArtifactView>
openArtifact(const std::vector<std::uint8_t> &bytes);

/** Write an artifact buffer to a file (atomic-enough: truncate). */
Status saveArtifactFile(const std::string &path,
                        const std::vector<std::uint8_t> &bytes);

/** Read a whole artifact file; IO errors come back as Status. */
Expected<std::vector<std::uint8_t>>
loadArtifactFile(const std::string &path);

} // namespace dcmbqc

#endif // DCMBQC_SERIALIZE_ARTIFACT_HH
