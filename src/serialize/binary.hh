/**
 * @file
 * Endianness-stable binary encoding primitives of the artifact
 * format. `BinaryWriter` appends explicitly little-endian fixed-width
 * fields to a byte buffer; `BinaryReader` is the bounds-checked
 * mirror that never reads past the end: the first violation latches
 * an error Status and turns every subsequent read into a zero-value
 * no-op, so decoders can run to completion and report the failure
 * once through the Expected channel instead of asserting.
 */

#ifndef DCMBQC_SERIALIZE_BINARY_HH
#define DCMBQC_SERIALIZE_BINARY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "api/status.hh"

namespace dcmbqc
{

/** 64-bit FNV-1a hash (the artifact checksum / cache-key hash). */
std::uint64_t fnv1a64(const std::uint8_t *data, std::size_t size,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

/** Appends little-endian fields to a growable byte buffer. */
class BinaryWriter
{
  public:
    const std::vector<std::uint8_t> &bytes() const { return bytes_; }
    std::vector<std::uint8_t> take() { return std::move(bytes_); }
    std::size_t size() const { return bytes_.size(); }

    void writeU8(std::uint8_t value) { bytes_.push_back(value); }
    void writeU16(std::uint16_t value);
    void writeU32(std::uint32_t value);
    void writeU64(std::uint64_t value);
    void writeI32(std::int32_t value);
    void writeI64(std::int64_t value);

    /** IEEE-754 bit pattern, little-endian (stable across hosts). */
    void writeF64(double value);

    /** u32 byte length + raw bytes. */
    void writeString(const std::string &value);

    /** u32 element count + little-endian elements. */
    void writeI32Vector(const std::vector<std::int32_t> &values);
    void writeF64Vector(const std::vector<double> &values);

    /** Raw bytes, no length prefix (for nested payloads). */
    void writeBytes(const std::uint8_t *data, std::size_t size);

    /** Patch a previously written u64 in place (size back-fill). */
    void patchU64(std::size_t offset, std::uint64_t value);

  private:
    std::vector<std::uint8_t> bytes_;
};

/**
 * Bounds-checked little-endian reader over a borrowed byte range.
 * After the first out-of-bounds read, `ok()` is false and all
 * further reads return zero values.
 */
class BinaryReader
{
  public:
    BinaryReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    explicit BinaryReader(const std::vector<std::uint8_t> &bytes)
        : BinaryReader(bytes.data(), bytes.size())
    {
    }

    bool ok() const { return status_.ok(); }
    const Status &status() const { return status_; }
    std::size_t remaining() const { return size_ - pos_; }
    bool atEnd() const { return pos_ == size_; }

    /** Latch a decoder-level error (corruption found by a codec). */
    void fail(const std::string &message);

    std::uint8_t readU8();
    std::uint16_t readU16();
    std::uint32_t readU32();
    std::uint64_t readU64();
    std::int32_t readI32();
    std::int64_t readI64();
    double readF64();
    std::string readString();
    std::vector<std::int32_t> readI32Vector();
    std::vector<double> readF64Vector();

    /**
     * Read `size` raw bytes (no length prefix — the mirror of
     * writeBytes for nested payloads). Returns an empty vector and
     * latches an error when fewer bytes remain.
     */
    std::vector<std::uint8_t> readBytes(std::size_t size);

    /**
     * Read a u32 element count and verify the remaining bytes can
     * hold that many elements of `element_size` bytes; returns 0 and
     * latches an error otherwise (guards against allocation bombs
     * from corrupted length fields).
     */
    std::uint32_t readCount(std::size_t element_size);

  private:
    bool require(std::size_t bytes);

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    Status status_;
};

} // namespace dcmbqc

#endif // DCMBQC_SERIALIZE_BINARY_HH
