#include "serialize/codecs.hh"

#include <algorithm>
#include <vector>

#include "noise/mechanism.hh"

namespace dcmbqc
{

namespace
{

// --- Shared helpers --------------------------------------------------------

Status
statusFromCode(StatusCode code, std::string message)
{
    switch (code) {
      case StatusCode::Ok:
        return Status::okStatus();
      case StatusCode::InvalidArgument:
        return Status::invalidArgument(std::move(message));
      case StatusCode::InvalidConfig:
        return Status::invalidConfig(std::move(message));
      case StatusCode::FailedPrecondition:
        return Status::failedPrecondition(std::move(message));
      case StatusCode::Internal:
        return Status::internal(std::move(message));
      case StatusCode::Cancelled:
        return Status::cancelled(std::move(message));
      case StatusCode::DeadlineExceeded:
        return Status::deadlineExceeded(std::move(message));
      case StatusCode::ResourceExhausted:
        return Status::resourceExhausted(std::move(message));
      case StatusCode::Unavailable:
        return Status::unavailable(std::move(message));
    }
    return Status::internal(std::move(message));
}

void
encodeStatus(BinaryWriter &writer, const Status &status)
{
    writer.writeU8(static_cast<std::uint8_t>(status.code()));
    writer.writeString(status.message());
}

Status
decodeStatus(BinaryReader &reader)
{
    const std::uint8_t code = reader.readU8();
    std::string message = reader.readString();
    if (code > static_cast<std::uint8_t>(StatusCode::Unavailable)) {
        reader.fail("invalid status code tag " + std::to_string(code));
        return Status::okStatus();
    }
    return statusFromCode(static_cast<StatusCode>(code),
                          std::move(message));
}

void
encodeGridSpec(BinaryWriter &writer, const GridSpec &grid)
{
    writer.writeI32(grid.size);
    writer.writeU8(static_cast<std::uint8_t>(grid.resourceState));
    writer.writeI32(grid.plRatio);
    writer.writeI32(grid.reservedBoundary);
}

GridSpec
decodeGridSpec(BinaryReader &reader)
{
    GridSpec grid;
    grid.size = reader.readI32();
    const std::uint8_t state = reader.readU8();
    if (state > static_cast<std::uint8_t>(ResourceStateType::Star7))
        reader.fail("invalid resource-state tag " +
                    std::to_string(state));
    else
        grid.resourceState = static_cast<ResourceStateType>(state);
    grid.plRatio = reader.readI32();
    grid.reservedBoundary = reader.readI32();
    return grid;
}

void
encodePartitioning(BinaryWriter &writer, const Partitioning &part)
{
    writer.writeI32(part.numParts());
    writer.writeI32Vector(part.assignment());
}

Partitioning
decodePartitioning(BinaryReader &reader)
{
    const int k = reader.readI32();
    const std::vector<std::int32_t> assignment =
        reader.readI32Vector();
    if (!reader.ok())
        return {};
    if (k < 1) {
        reader.fail("partition k must be >= 1, got " +
                    std::to_string(k));
        return {};
    }
    for (int p : assignment) {
        if (p < 0 || p >= k) {
            reader.fail("partition assignment " + std::to_string(p) +
                        " outside [0, " + std::to_string(k) + ")");
            return {};
        }
    }
    return Partitioning(std::vector<int>(assignment.begin(),
                                         assignment.end()),
                        k);
}

void
encodeMetrics(BinaryWriter &writer, const ScheduleMetrics &metrics)
{
    writer.writeI32(metrics.tauLocal);
    writer.writeI32(metrics.tauRemote);
    writer.writeI32(metrics.makespan);
}

ScheduleMetrics
decodeMetrics(BinaryReader &reader)
{
    ScheduleMetrics metrics;
    metrics.tauLocal = reader.readI32();
    metrics.tauRemote = reader.readI32();
    metrics.makespan = reader.readI32();
    return metrics;
}

void
encodeDcResult(BinaryWriter &writer, const DcMbqcResult &result)
{
    encodePartitioning(writer, result.partition);
    writer.writeF64(result.partitionModularity);
    writer.writeF64(result.partitionImbalance);
    writer.writeI32(result.numConnectors);
    writer.writeU32(
        static_cast<std::uint32_t>(result.localSchedules.size()));
    for (const auto &local : result.localSchedules)
        encodeLocalSchedule(writer, local);
    encodeSchedule(writer, result.schedule);
    encodeMetrics(writer, result.metrics);
}

DcMbqcResult
decodeDcResult(BinaryReader &reader)
{
    DcMbqcResult result;
    result.partition = decodePartitioning(reader);
    result.partitionModularity = reader.readF64();
    result.partitionImbalance = reader.readF64();
    result.numConnectors = reader.readI32();
    const std::uint32_t locals = reader.readCount(1);
    for (std::uint32_t i = 0; i < locals && reader.ok(); ++i)
        result.localSchedules.push_back(decodeLocalSchedule(reader));
    result.schedule = decodeSchedule(reader);
    result.metrics = decodeMetrics(reader);
    return result;
}

void
encodeBaselineResult(BinaryWriter &writer,
                     const BaselineResult &result)
{
    encodeLocalSchedule(writer, result.schedule);
    writer.writeI32(result.lifetime.tauFusee);
    writer.writeI32(result.lifetime.tauMeasuree);
}

BaselineResult
decodeBaselineResult(BinaryReader &reader)
{
    BaselineResult result;
    result.schedule = decodeLocalSchedule(reader);
    result.lifetime.tauFusee = reader.readI32();
    result.lifetime.tauMeasuree = reader.readI32();
    return result;
}

/**
 * The flow-derived X/Z dependency sets, computed without asserts so
 * the decoder can diff them against the embedded copies instead of
 * aborting on corrupted input. Mirrors buildDependencyGraphs().
 */
void
flowDependencies(const Pattern &pattern, Digraph &x, Digraph &z)
{
    const NodeId n = pattern.numNodes();
    x = Digraph(n);
    z = Digraph(n);
    for (NodeId m = 0; m < n; ++m) {
        if (pattern.isOutput(m))
            continue;
        const NodeId succ = pattern.flow(m);
        if (!pattern.isOutput(succ))
            x.addArc(m, succ);
        for (const auto &adj : pattern.graph().adjacency(succ)) {
            const NodeId j = adj.neighbor;
            if (j == m || pattern.isOutput(j))
                continue;
            z.addArc(m, j);
        }
    }
}

bool
sameDigraph(const Digraph &a, const Digraph &b)
{
    if (a.numNodes() != b.numNodes() || a.numArcs() != b.numArcs())
        return false;
    for (NodeId u = 0; u < a.numNodes(); ++u)
        if (a.successors(u) != b.successors(u))
            return false;
    return true;
}

template <typename T, typename Decode>
Expected<T>
decodeArtifactAs(ArtifactKind kind,
                 const std::vector<std::uint8_t> &bytes,
                 Decode decode)
{
    auto view = openArtifact(bytes);
    if (!view.ok())
        return view.status();
    if (view->kind != kind)
        return Status::invalidArgument(
            std::string("artifact kind mismatch: expected ") +
            artifactKindName(kind) + ", found " +
            artifactKindName(view->kind));
    BinaryReader reader(view->payload, view->payloadSize);
    T value = decode(reader);
    if (!reader.ok())
        return reader.status();
    if (!reader.atEnd())
        return Status::invalidArgument(
            "artifact corrupted: " +
            std::to_string(reader.remaining()) +
            " trailing payload bytes");
    return value;
}

template <typename Encode>
std::vector<std::uint8_t>
sealPayload(ArtifactKind kind, Encode encode)
{
    BinaryWriter writer;
    encode(writer);
    return sealArtifact(kind, writer.bytes());
}

} // namespace

// --- Circuit ---------------------------------------------------------------

void
encodeCircuit(BinaryWriter &writer, const Circuit &circuit)
{
    writer.writeI32(circuit.numQubits());
    writer.writeString(circuit.name());
    writer.writeU32(static_cast<std::uint32_t>(circuit.numGates()));
    for (const Gate &gate : circuit.gates()) {
        writer.writeU8(static_cast<std::uint8_t>(gate.kind));
        writer.writeI32(gate.q0);
        writer.writeI32(gate.q1);
        writer.writeI32(gate.q2);
        writer.writeF64(gate.angle);
    }
}

Circuit
decodeCircuit(BinaryReader &reader)
{
    const int qubits = reader.readI32();
    std::string name = reader.readString();
    if (!reader.ok())
        return Circuit(1);
    if (qubits < 1) {
        reader.fail("circuit qubit count must be >= 1, got " +
                    std::to_string(qubits));
        return Circuit(1);
    }
    Circuit circuit(qubits, std::move(name));
    const std::uint32_t gates = reader.readCount(21);
    for (std::uint32_t i = 0; i < gates && reader.ok(); ++i) {
        Gate gate;
        const std::uint8_t kind = reader.readU8();
        gate.q0 = reader.readI32();
        gate.q1 = reader.readI32();
        gate.q2 = reader.readI32();
        gate.angle = reader.readF64();
        if (!reader.ok())
            break;
        if (kind > static_cast<std::uint8_t>(GateKind::CCX)) {
            reader.fail("invalid gate kind tag " +
                        std::to_string(kind));
            break;
        }
        gate.kind = static_cast<GateKind>(kind);
        const QubitId used[3] = {gate.q0, gate.q1, gate.q2};
        bool valid = true;
        for (int q = 0; q < gate.arity(); ++q)
            valid &= used[q] >= 0 && used[q] < qubits;
        if (!valid) {
            reader.fail("gate " + std::to_string(i) +
                        " addresses a qubit outside [0, " +
                        std::to_string(qubits) + ")");
            break;
        }
        circuit.append(gate);
    }
    return circuit;
}

// --- Graph / Digraph -------------------------------------------------------

void
encodeGraph(BinaryWriter &writer, const Graph &graph)
{
    writer.writeI32(graph.numNodes());
    for (NodeId u = 0; u < graph.numNodes(); ++u)
        writer.writeI32(graph.nodeWeight(u));
    writer.writeU32(static_cast<std::uint32_t>(graph.numEdges()));
    for (const Edge &e : graph.edges()) {
        writer.writeI32(e.u);
        writer.writeI32(e.v);
        writer.writeI32(e.weight);
    }
}

Graph
decodeGraph(BinaryReader &reader)
{
    const NodeId n = reader.readI32();
    if (!reader.ok())
        return {};
    if (n < 0 ||
        static_cast<std::uint64_t>(n) * 4 > reader.remaining()) {
        reader.fail("graph node count " + std::to_string(n) +
                    " is invalid for the payload size");
        return {};
    }
    Graph graph;
    for (NodeId u = 0; u < n; ++u)
        graph.addNode(reader.readI32());
    const std::uint32_t edges = reader.readCount(12);
    for (std::uint32_t i = 0; i < edges && reader.ok(); ++i) {
        const NodeId u = reader.readI32();
        const NodeId v = reader.readI32();
        const int weight = reader.readI32();
        if (!reader.ok())
            break;
        if (u < 0 || u >= n || v < 0 || v >= n || u == v) {
            reader.fail("graph edge " + std::to_string(i) + " (" +
                        std::to_string(u) + ", " + std::to_string(v) +
                        ") is invalid for " + std::to_string(n) +
                        " nodes");
            break;
        }
        graph.addEdge(u, v, weight);
    }
    return graph;
}

void
encodeDigraph(BinaryWriter &writer, const Digraph &digraph)
{
    writer.writeI32(digraph.numNodes());
    for (NodeId u = 0; u < digraph.numNodes(); ++u)
        writer.writeI32Vector(digraph.successors(u));
}

Digraph
decodeDigraph(BinaryReader &reader)
{
    const NodeId n = reader.readI32();
    if (!reader.ok())
        return {};
    if (n < 0 ||
        static_cast<std::uint64_t>(n) * 4 > reader.remaining()) {
        reader.fail("digraph node count " + std::to_string(n) +
                    " is invalid for the payload size");
        return {};
    }
    Digraph digraph(n);
    for (NodeId u = 0; u < n && reader.ok(); ++u) {
        const std::vector<std::int32_t> succ = reader.readI32Vector();
        for (NodeId v : succ) {
            if (v < 0 || v >= n) {
                reader.fail("digraph arc " + std::to_string(u) +
                            " -> " + std::to_string(v) +
                            " is out of range");
                return digraph;
            }
            digraph.addArc(u, v);
        }
    }
    return digraph;
}

// --- Pattern ---------------------------------------------------------------

void
encodePattern(BinaryWriter &writer, const Pattern &pattern)
{
    encodeGraph(writer, pattern.graph());
    const NodeId n = pattern.numNodes();
    std::vector<double> angles(n);
    std::vector<std::int32_t> flow(n), wires(n);
    for (NodeId u = 0; u < n; ++u) {
        angles[u] = pattern.angle(u);
        flow[u] = pattern.flow(u);
        wires[u] = pattern.wire(u);
    }
    writer.writeF64Vector(angles);
    writer.writeI32Vector(flow);
    writer.writeI32Vector(wires);
    writer.writeI32Vector(pattern.measurementOrder());
    writer.writeI32Vector(pattern.outputs());

    Digraph x, z;
    flowDependencies(pattern, x, z);
    encodeDigraph(writer, x);
    encodeDigraph(writer, z);
}

Pattern
decodePattern(BinaryReader &reader)
{
    const Graph graph = decodeGraph(reader);
    const std::vector<double> angles = reader.readF64Vector();
    const std::vector<std::int32_t> flow = reader.readI32Vector();
    const std::vector<std::int32_t> wires = reader.readI32Vector();
    const std::vector<std::int32_t> order = reader.readI32Vector();
    const std::vector<std::int32_t> outputs = reader.readI32Vector();
    if (!reader.ok())
        return {};

    const NodeId n = graph.numNodes();
    const auto sized = [n](const auto &v) {
        return static_cast<NodeId>(v.size()) == n;
    };
    if (!sized(angles) || !sized(flow) || !sized(wires)) {
        reader.fail("pattern per-node vectors disagree with the "
                    "graph's " +
                    std::to_string(n) + " nodes");
        return {};
    }
    if (static_cast<NodeId>(order.size() + outputs.size()) != n) {
        reader.fail("pattern corrupted: " +
                    std::to_string(order.size()) + " measured + " +
                    std::to_string(outputs.size()) +
                    " outputs != " + std::to_string(n) + " nodes");
        return {};
    }
    const int num_wires = static_cast<int>(outputs.size());
    std::vector<char> measured(n, 0);
    for (NodeId u : order) {
        if (u < 0 || u >= n || measured[u]) {
            reader.fail("pattern measurement order is not a set of "
                        "distinct node ids");
            return {};
        }
        measured[u] = 1;
        if (flow[u] < 0 || flow[u] >= n || !graph.hasEdge(u, flow[u])) {
            reader.fail("flow successor of node " + std::to_string(u) +
                        " is not a graph neighbor");
            return {};
        }
    }
    for (NodeId out : outputs) {
        if (out < 0 || out >= n || measured[out] ||
            flow[out] != invalidNode) {
            reader.fail("pattern output list is inconsistent with "
                        "flow");
            return {};
        }
    }
    for (NodeId u = 0; u < n; ++u) {
        if (!measured[u] && flow[u] != invalidNode) {
            reader.fail("unmeasured node " + std::to_string(u) +
                        " carries a flow successor");
            return {};
        }
        if (wires[u] < 0 || wires[u] >= num_wires) {
            reader.fail("wire of node " + std::to_string(u) +
                        " outside [0, " + std::to_string(num_wires) +
                        ")");
            return {};
        }
    }

    Pattern pattern;
    for (NodeId u = 0; u < n; ++u)
        pattern.addNode(wires[u]);
    for (const Edge &e : graph.edges())
        pattern.mutableGraph().addEdge(e.u, e.v, e.weight);
    for (NodeId u : order)
        pattern.setMeasurement(u, angles[u], flow[u]);
    pattern.setOutputs(
        std::vector<NodeId>(outputs.begin(), outputs.end()));

    // The embedded X/Z dependency sets must match the flow-derived
    // ones; a mismatch means payload corruption the envelope
    // checksum cannot attribute.
    const Digraph x_stored = decodeDigraph(reader);
    const Digraph z_stored = decodeDigraph(reader);
    if (!reader.ok())
        return {};
    Digraph x, z;
    flowDependencies(pattern, x, z);
    if (!sameDigraph(x, x_stored) || !sameDigraph(z, z_stored)) {
        reader.fail("embedded X/Z dependency sets disagree with the "
                    "decoded causal flow");
        return {};
    }
    if (!x.isAcyclic()) {
        reader.fail("pattern X-dependency graph is cyclic");
        return {};
    }
    return pattern;
}

// --- Config ----------------------------------------------------------------

void
encodeConfig(BinaryWriter &writer, const DcMbqcConfig &config)
{
    writer.writeI32(config.numQpus);
    encodeGridSpec(writer, config.grid);
    writer.writeI32(config.kmax);
    writer.writeI32(config.partition.k);
    writer.writeF64(config.partition.epsilonQ);
    writer.writeF64(config.partition.alphaMax);
    writer.writeF64(config.partition.gamma);
    writer.writeI32(config.partition.maxIterations);
    writer.writeU64(config.partition.seed);
    writer.writeU8(config.useBdir ? 1 : 0);
    writer.writeF64(config.bdir.initialTemperature);
    writer.writeF64(config.bdir.coolingRate);
    writer.writeI32(config.bdir.maxIterations);
    writer.writeU64(config.bdir.seed);
    writer.writeU8(static_cast<std::uint8_t>(config.order));
}

DcMbqcConfig
decodeConfig(BinaryReader &reader)
{
    DcMbqcConfig config;
    config.numQpus = reader.readI32();
    config.grid = decodeGridSpec(reader);
    config.kmax = reader.readI32();
    config.partition.k = reader.readI32();
    config.partition.epsilonQ = reader.readF64();
    config.partition.alphaMax = reader.readF64();
    config.partition.gamma = reader.readF64();
    config.partition.maxIterations = reader.readI32();
    config.partition.seed = reader.readU64();
    config.useBdir = reader.readU8() != 0;
    config.bdir.initialTemperature = reader.readF64();
    config.bdir.coolingRate = reader.readF64();
    config.bdir.maxIterations = reader.readI32();
    config.bdir.seed = reader.readU64();
    const std::uint8_t order = reader.readU8();
    if (order >
        static_cast<std::uint8_t>(PlacementOrder::DependencyAwareRcm))
        reader.fail("invalid placement-order tag " +
                    std::to_string(order));
    else
        config.order = static_cast<PlacementOrder>(order);
    return config;
}

// --- Schedules -------------------------------------------------------------

void
encodeLocalSchedule(BinaryWriter &writer, const LocalSchedule &schedule)
{
    encodeGridSpec(writer, schedule.grid);
    writer.writeU32(static_cast<std::uint32_t>(schedule.layers.size()));
    for (const ExecutionLayer &layer : schedule.layers) {
        writer.writeI32Vector(layer.nodes);
        writer.writeI32(layer.computeCells);
        writer.writeI32(layer.routingCells);
    }
    writer.writeI32Vector(schedule.nodeLayer);
    writer.writeI64(schedule.routingFusions);
    writer.writeI64(schedule.edgeFusions);
}

LocalSchedule
decodeLocalSchedule(BinaryReader &reader)
{
    LocalSchedule schedule;
    schedule.grid = decodeGridSpec(reader);
    const std::uint32_t layers = reader.readCount(12);
    for (std::uint32_t i = 0; i < layers && reader.ok(); ++i) {
        ExecutionLayer layer;
        layer.nodes = reader.readI32Vector();
        layer.computeCells = reader.readI32();
        layer.routingCells = reader.readI32();
        schedule.layers.push_back(std::move(layer));
    }
    schedule.nodeLayer = reader.readI32Vector();
    schedule.routingFusions = reader.readI64();
    schedule.edgeFusions = reader.readI64();
    for (LayerId layer : schedule.nodeLayer) {
        if (layer != invalidLayer &&
            (layer < 0 ||
             layer >= static_cast<LayerId>(schedule.layers.size()))) {
            reader.fail("nodeLayer entry " + std::to_string(layer) +
                        " outside the " +
                        std::to_string(schedule.layers.size()) +
                        " layers");
            break;
        }
    }
    return schedule;
}

void
encodeSchedule(BinaryWriter &writer, const Schedule &schedule)
{
    writer.writeI32Vector(schedule.mainStart);
    writer.writeI32Vector(schedule.syncStart);
    writer.writeI32(schedule.makespan);
}

Schedule
decodeSchedule(BinaryReader &reader)
{
    Schedule schedule;
    schedule.mainStart = reader.readI32Vector();
    schedule.syncStart = reader.readI32Vector();
    schedule.makespan = reader.readI32();
    return schedule;
}

// --- CompileReport ---------------------------------------------------------

namespace
{

void
encodePortfolioReport(BinaryWriter &writer,
                      const PortfolioReport &race)
{
    writer.writeU32(static_cast<std::uint32_t>(race.requested));
    writer.writeI32(race.winnerIndex);
    writer.writeF64(race.raceMillis);
    writer.writeU32(
        static_cast<std::uint32_t>(race.cancelledEarly));
    writer.writeU8(race.validated ? 1 : 0);
    writer.writeString(race.validationNote);
    writer.writeU32(
        static_cast<std::uint32_t>(race.candidates.size()));
    for (const PortfolioCandidate &entry : race.candidates) {
        writer.writeString(entry.strategy);
        writer.writeU64(entry.seed);
        std::uint8_t flags = 0;
        if (entry.cacheHit)
            flags |= 1;
        if (entry.cancelled)
            flags |= 2;
        if (entry.winner)
            flags |= 4;
        writer.writeU8(flags);
        encodeStatus(writer, entry.status);
        writer.writeF64(entry.logSurvival);
        writer.writeF64(entry.successProbability);
        writer.writeI32(entry.makespan);
        writer.writeI32(entry.connectors);
        writer.writeF64(entry.wallMillis);
    }
}

PortfolioReport
decodePortfolioReport(BinaryReader &reader)
{
    PortfolioReport race;
    race.requested = static_cast<int>(reader.readU32());
    race.winnerIndex = reader.readI32();
    race.raceMillis = reader.readF64();
    race.cancelledEarly = static_cast<int>(reader.readU32());
    race.validated = reader.readU8() != 0;
    race.validationNote = reader.readString();
    const std::uint32_t candidates = reader.readCount(10);
    for (std::uint32_t i = 0; i < candidates && reader.ok(); ++i) {
        PortfolioCandidate entry;
        entry.strategy = reader.readString();
        entry.seed = reader.readU64();
        const std::uint8_t flags = reader.readU8();
        if ((flags & ~0x7) != 0) {
            reader.fail("portfolio-candidate flags byte " +
                        std::to_string(flags) + " is invalid");
            break;
        }
        entry.cacheHit = (flags & 1) != 0;
        entry.cancelled = (flags & 2) != 0;
        entry.winner = (flags & 4) != 0;
        entry.status = decodeStatus(reader);
        entry.logSurvival = reader.readF64();
        entry.successProbability = reader.readF64();
        entry.makespan = reader.readI32();
        entry.connectors = reader.readI32();
        entry.wallMillis = reader.readF64();
        race.candidates.push_back(std::move(entry));
    }
    if (reader.ok() &&
        (race.winnerIndex < -1 ||
         race.winnerIndex >=
             static_cast<int>(race.candidates.size())))
        reader.fail("portfolio winner index " +
                    std::to_string(race.winnerIndex) +
                    " outside the candidate table");
    return race;
}

} // namespace

void
encodeCompileReport(BinaryWriter &writer, const CompileReport &report)
{
    writer.writeString(report.label);
    std::uint8_t flags = 0;
    if (report.distributed)
        flags |= 1;
    if (report.baseline)
        flags |= 2;
    if (report.cacheHit)
        flags |= 4;
    if (report.cacheStats)
        flags |= 8;
    if (!report.executions.empty())
        flags |= 16;
    if (report.pattern)
        flags |= 32;
    if (report.portfolio)
        flags |= 64;
    writer.writeU8(flags);
    if (report.distributed)
        encodeDcResult(writer, *report.distributed);
    if (report.baseline)
        encodeBaselineResult(writer, *report.baseline);
    writer.writeU32(static_cast<std::uint32_t>(report.stages.size()));
    for (const StageReport &stage : report.stages) {
        writer.writeString(stage.pass);
        writer.writeF64(stage.millis);
        encodeStatus(writer, stage.status);
        writer.writeString(stage.note);
    }
    writer.writeU32(
        static_cast<std::uint32_t>(report.warnings.size()));
    for (const std::string &warning : report.warnings)
        writer.writeString(warning);
    writer.writeF64(report.totalMillis);
    writer.writeU64(report.cacheKey);
    writer.writeU64(report.cacheVerifier);
    if (report.cacheStats) {
        writer.writeU64(report.cacheStats->hits);
        writer.writeU64(report.cacheStats->misses);
        writer.writeU64(report.cacheStats->evictions);
        writer.writeU64(report.cacheStats->diskHits);
        writer.writeU64(report.cacheStats->diskWrites);
    }
    if (!report.executions.empty()) {
        writer.writeU32(
            static_cast<std::uint32_t>(report.executions.size()));
        for (const ExecResult &execution : report.executions)
            encodeExecResult(writer, execution);
    }
    if (report.pattern)
        encodePattern(writer, *report.pattern);
    if (report.portfolio)
        encodePortfolioReport(writer, *report.portfolio);
}

CompileReport
decodeCompileReport(BinaryReader &reader)
{
    CompileReport report;
    report.label = reader.readString();
    const std::uint8_t flags = reader.readU8();
    // Every legitimately encoded report carries exactly the flags
    // this version writes, and always one result payload; anything
    // else is a corrupted or handcrafted artifact. Bit 16
    // (executions) and bit 32 (retained pattern) are absent from
    // older artifacts, which keeps them decodable byte for byte —
    // as is bit 64 (portfolio race table).
    if ((flags & ~0x7f) != 0 || (flags & 3) == 0) {
        reader.fail("compile-report flags byte " +
                    std::to_string(flags) +
                    " is invalid (no result payload)");
        return report;
    }
    if (flags & 1)
        report.distributed = decodeDcResult(reader);
    if (flags & 2)
        report.baseline = decodeBaselineResult(reader);
    report.cacheHit = (flags & 4) != 0;
    const std::uint32_t stages = reader.readCount(1);
    for (std::uint32_t i = 0; i < stages && reader.ok(); ++i) {
        StageReport stage;
        stage.pass = reader.readString();
        stage.millis = reader.readF64();
        stage.status = decodeStatus(reader);
        stage.note = reader.readString();
        report.stages.push_back(std::move(stage));
    }
    const std::uint32_t warnings = reader.readCount(1);
    for (std::uint32_t i = 0; i < warnings && reader.ok(); ++i)
        report.warnings.push_back(reader.readString());
    report.totalMillis = reader.readF64();
    report.cacheKey = reader.readU64();
    report.cacheVerifier = reader.readU64();
    if (flags & 8) {
        CacheStats stats;
        stats.hits = reader.readU64();
        stats.misses = reader.readU64();
        stats.evictions = reader.readU64();
        stats.diskHits = reader.readU64();
        stats.diskWrites = reader.readU64();
        report.cacheStats = stats;
    }
    if (flags & 16) {
        const std::uint32_t executions = reader.readCount(1);
        if (executions == 0 && reader.ok())
            reader.fail("executions flag set on an empty list");
        for (std::uint32_t i = 0; i < executions && reader.ok(); ++i)
            report.executions.push_back(decodeExecResult(reader));
    }
    if (flags & 32)
        report.pattern = decodePattern(reader);
    if (flags & 64)
        report.portfolio = decodePortfolioReport(reader);
    return report;
}

// --- ExecResult ------------------------------------------------------------

namespace
{

void
encodeCountMap(BinaryWriter &writer,
               const std::map<std::string, std::int64_t> &counts)
{
    writer.writeU32(static_cast<std::uint32_t>(counts.size()));
    for (const auto &[key, count] : counts) {
        writer.writeString(key);
        writer.writeI64(count);
    }
}

std::map<std::string, std::int64_t>
decodeCountMap(BinaryReader &reader)
{
    std::map<std::string, std::int64_t> counts;
    const std::uint32_t entries = reader.readCount(5);
    for (std::uint32_t i = 0; i < entries && reader.ok(); ++i) {
        std::string key = reader.readString();
        const std::int64_t count = reader.readI64();
        if (count < 0) {
            reader.fail("negative outcome count " +
                        std::to_string(count) + " for '" + key + "'");
            break;
        }
        if (!counts.emplace(std::move(key), count).second) {
            reader.fail("duplicate outcome key in histogram");
            break;
        }
    }
    return counts;
}

void
encodeProbMap(BinaryWriter &writer,
              const std::map<std::string, double> &probabilities)
{
    writer.writeU32(
        static_cast<std::uint32_t>(probabilities.size()));
    for (const auto &[key, probability] : probabilities) {
        writer.writeString(key);
        writer.writeF64(probability);
    }
}

std::map<std::string, double>
decodeProbMap(BinaryReader &reader)
{
    std::map<std::string, double> probabilities;
    const std::uint32_t entries = reader.readCount(5);
    for (std::uint32_t i = 0; i < entries && reader.ok(); ++i) {
        std::string key = reader.readString();
        const double probability = reader.readF64();
        if (!(probability >= 0.0 && probability <= 1.0 + 1e-9)) {
            reader.fail("probability of '" + key +
                        "' outside [0, 1]");
            break;
        }
        if (!probabilities.emplace(std::move(key), probability)
                 .second) {
            reader.fail("duplicate outcome key in probabilities");
            break;
        }
    }
    return probabilities;
}

} // namespace

void
encodeExecResult(BinaryWriter &writer, const ExecResult &result)
{
    writer.writeString(result.backend);
    writer.writeString(result.label);
    writer.writeI32(result.shots);
    writer.writeI32(result.completedShots);
    writer.writeI32(result.numWires);
    writer.writeI64(result.seed);
    writer.writeI32(result.threads);
    writer.writeF64(result.wallMillis);
    encodeCountMap(writer, result.counts);
    encodeProbMap(writer, result.probabilities);
    writer.writeI32(result.lostShots);
    writer.writeI64(result.lostPhotons);
    writer.writeF64(result.analyticSuccessProbability);
    writer.writeI32(result.maxStorageCycles);
    writer.writeF64(result.meanStorageCycles);
    writer.writeU32(static_cast<std::uint32_t>(result.notes.size()));
    for (const std::string &note : result.notes)
        writer.writeString(note);
}

ExecResult
decodeExecResult(BinaryReader &reader)
{
    ExecResult result;
    result.backend = reader.readString();
    result.label = reader.readString();
    result.shots = reader.readI32();
    result.completedShots = reader.readI32();
    result.numWires = reader.readI32();
    result.seed = reader.readI64();
    result.threads = reader.readI32();
    result.wallMillis = reader.readF64();
    result.counts = decodeCountMap(reader);
    result.probabilities = decodeProbMap(reader);
    result.lostShots = reader.readI32();
    result.lostPhotons = reader.readI64();
    result.analyticSuccessProbability = reader.readF64();
    result.maxStorageCycles = reader.readI32();
    result.meanStorageCycles = reader.readF64();
    const std::uint32_t notes = reader.readCount(4);
    for (std::uint32_t i = 0; i < notes && reader.ok(); ++i)
        result.notes.push_back(reader.readString());
    if (!reader.ok())
        return result;
    if (result.shots < 0 || result.completedShots < 0 ||
        result.completedShots > result.shots) {
        reader.fail("shot counts inconsistent: " +
                    std::to_string(result.completedShots) + " of " +
                    std::to_string(result.shots) + " completed");
        return result;
    }
    std::int64_t counted = 0;
    for (const auto &[key, count] : result.counts)
        counted += count;
    if (counted > result.shots)
        reader.fail("histogram holds " + std::to_string(counted) +
                    " outcomes for " + std::to_string(result.shots) +
                    " shots");
    return result;
}

// --- NoiseConfig -----------------------------------------------------------

void
encodeNoiseConfig(BinaryWriter &writer, const NoiseConfig &config)
{
    writer.writeU32(
        static_cast<std::uint32_t>(config.mechanisms.size()));
    for (const MechanismSpec &spec : config.mechanisms) {
        writer.writeString(spec.mechanism);
        writer.writeU32(static_cast<std::uint32_t>(spec.params.size()));
        for (const NoiseParam &param : spec.params) {
            writer.writeString(param.name);
            writer.writeF64(param.value);
        }
    }
}

NoiseConfig
decodeNoiseConfig(BinaryReader &reader)
{
    NoiseConfig config;
    const std::uint32_t mechanisms = reader.readCount(8);
    for (std::uint32_t i = 0; i < mechanisms && reader.ok(); ++i) {
        MechanismSpec spec;
        spec.mechanism = reader.readString();
        if (reader.ok() && !isKnownNoiseMechanism(spec.mechanism)) {
            reader.fail("unknown noise mechanism '" + spec.mechanism +
                        "' in noise-config artifact");
            break;
        }
        const std::uint32_t params = reader.readCount(12);
        for (std::uint32_t j = 0; j < params && reader.ok(); ++j) {
            NoiseParam param;
            param.name = reader.readString();
            param.value = reader.readF64();
            spec.params.push_back(std::move(param));
        }
        config.mechanisms.push_back(std::move(spec));
    }
    return config;
}

// --- Artifact wrappers -----------------------------------------------------

std::vector<std::uint8_t>
encodeCircuitArtifact(const Circuit &circuit)
{
    return sealPayload(ArtifactKind::Circuit, [&](BinaryWriter &w) {
        encodeCircuit(w, circuit);
    });
}

Expected<Circuit>
decodeCircuitArtifact(const std::vector<std::uint8_t> &bytes)
{
    return decodeArtifactAs<Circuit>(ArtifactKind::Circuit, bytes,
                                     decodeCircuit);
}

std::vector<std::uint8_t>
encodeGraphArtifact(const Graph &graph)
{
    return sealPayload(ArtifactKind::Graph, [&](BinaryWriter &w) {
        encodeGraph(w, graph);
    });
}

Expected<Graph>
decodeGraphArtifact(const std::vector<std::uint8_t> &bytes)
{
    return decodeArtifactAs<Graph>(ArtifactKind::Graph, bytes,
                                   decodeGraph);
}

std::vector<std::uint8_t>
encodeDigraphArtifact(const Digraph &digraph)
{
    return sealPayload(ArtifactKind::Digraph, [&](BinaryWriter &w) {
        encodeDigraph(w, digraph);
    });
}

Expected<Digraph>
decodeDigraphArtifact(const std::vector<std::uint8_t> &bytes)
{
    return decodeArtifactAs<Digraph>(ArtifactKind::Digraph, bytes,
                                     decodeDigraph);
}

std::vector<std::uint8_t>
encodePatternArtifact(const Pattern &pattern)
{
    return sealPayload(ArtifactKind::Pattern, [&](BinaryWriter &w) {
        encodePattern(w, pattern);
    });
}

Expected<Pattern>
decodePatternArtifact(const std::vector<std::uint8_t> &bytes)
{
    return decodeArtifactAs<Pattern>(ArtifactKind::Pattern, bytes,
                                     decodePattern);
}

std::vector<std::uint8_t>
encodeConfigArtifact(const DcMbqcConfig &config)
{
    return sealPayload(ArtifactKind::Config, [&](BinaryWriter &w) {
        encodeConfig(w, config);
    });
}

Expected<DcMbqcConfig>
decodeConfigArtifact(const std::vector<std::uint8_t> &bytes)
{
    return decodeArtifactAs<DcMbqcConfig>(ArtifactKind::Config, bytes,
                                          decodeConfig);
}

std::vector<std::uint8_t>
encodeLocalScheduleArtifact(const LocalSchedule &schedule)
{
    return sealPayload(ArtifactKind::LocalSchedule,
                       [&](BinaryWriter &w) {
                           encodeLocalSchedule(w, schedule);
                       });
}

Expected<LocalSchedule>
decodeLocalScheduleArtifact(const std::vector<std::uint8_t> &bytes)
{
    return decodeArtifactAs<LocalSchedule>(ArtifactKind::LocalSchedule,
                                           bytes, decodeLocalSchedule);
}

std::vector<std::uint8_t>
encodeScheduleArtifact(const Schedule &schedule)
{
    return sealPayload(ArtifactKind::Schedule, [&](BinaryWriter &w) {
        encodeSchedule(w, schedule);
    });
}

Expected<Schedule>
decodeScheduleArtifact(const std::vector<std::uint8_t> &bytes)
{
    return decodeArtifactAs<Schedule>(ArtifactKind::Schedule, bytes,
                                      decodeSchedule);
}

std::vector<std::uint8_t>
encodeCompileReportArtifact(const CompileReport &report)
{
    return sealPayload(ArtifactKind::CompileReport,
                       [&](BinaryWriter &w) {
                           encodeCompileReport(w, report);
                       });
}

Expected<CompileReport>
decodeCompileReportArtifact(const std::vector<std::uint8_t> &bytes)
{
    return decodeArtifactAs<CompileReport>(ArtifactKind::CompileReport,
                                           bytes, decodeCompileReport);
}

std::vector<std::uint8_t>
encodeExecResultArtifact(const ExecResult &result)
{
    return sealPayload(ArtifactKind::ExecResult, [&](BinaryWriter &w) {
        encodeExecResult(w, result);
    });
}

Expected<ExecResult>
decodeExecResultArtifact(const std::vector<std::uint8_t> &bytes)
{
    return decodeArtifactAs<ExecResult>(ArtifactKind::ExecResult,
                                        bytes, decodeExecResult);
}

std::vector<std::uint8_t>
encodeNoiseConfigArtifact(const NoiseConfig &config)
{
    return sealPayload(ArtifactKind::NoiseConfig,
                       [&](BinaryWriter &w) {
                           encodeNoiseConfig(w, config);
                       });
}

Expected<NoiseConfig>
decodeNoiseConfigArtifact(const std::vector<std::uint8_t> &bytes)
{
    return decodeArtifactAs<NoiseConfig>(ArtifactKind::NoiseConfig,
                                         bytes, decodeNoiseConfig);
}

} // namespace dcmbqc
