#include "serialize/json.hh"

#include <cmath>
#include <cstdio>

#include "mbqc/dependency.hh"
#include "photonic/resource_state.hh"

namespace dcmbqc
{

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (unsigned char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
JsonWriter::newline()
{
    out_ += '\n';
    out_.append(static_cast<std::size_t>(depth_) * 2, ' ');
}

void
JsonWriter::prefix()
{
    if (afterKey_) {
        afterKey_ = false;
        return;
    }
    if (!firstInScope_)
        out_ += ',';
    if (depth_ > 0)
        newline();
    firstInScope_ = false;
}

JsonWriter &
JsonWriter::beginObject()
{
    prefix();
    out_ += '{';
    ++depth_;
    firstInScope_ = true;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    --depth_;
    if (!firstInScope_)
        newline();
    out_ += '}';
    firstInScope_ = false;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    prefix();
    out_ += '[';
    ++depth_;
    firstInScope_ = true;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    --depth_;
    if (!firstInScope_)
        newline();
    out_ += ']';
    firstInScope_ = false;
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    prefix();
    out_ += '"';
    out_ += jsonEscape(name);
    out_ += "\": ";
    afterKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &text)
{
    prefix();
    out_ += '"';
    out_ += jsonEscape(text);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string(text));
}

JsonWriter &
JsonWriter::value(double number)
{
    prefix();
    if (std::isfinite(number)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.12g", number);
        out_ += buf;
    } else {
        out_ += "null";
    }
    return *this;
}

JsonWriter &
JsonWriter::value(long long number)
{
    prefix();
    out_ += std::to_string(number);
    return *this;
}

JsonWriter &
JsonWriter::value(unsigned long long number)
{
    prefix();
    out_ += std::to_string(number);
    return *this;
}

JsonWriter &
JsonWriter::value(bool flag)
{
    prefix();
    out_ += flag ? "true" : "false";
    return *this;
}

namespace
{

void
writeI32Array(JsonWriter &json, const std::vector<std::int32_t> &values)
{
    json.beginArray();
    for (std::int32_t v : values)
        json.value(v);
    json.endArray();
}

void
writeStringArray(JsonWriter &json, const std::vector<std::string> &values)
{
    json.beginArray();
    for (const std::string &v : values)
        json.value(v);
    json.endArray();
}

void
writeGridSpec(JsonWriter &json, const GridSpec &grid)
{
    json.beginObject();
    json.key("size").value(grid.size);
    json.key("resourceState")
        .value(resourceStateInfo(grid.resourceState).name());
    json.key("plRatio").value(grid.plRatio);
    json.key("reservedBoundary").value(grid.reservedBoundary);
    json.endObject();
}

void
writeDigraphArcs(JsonWriter &json, const Digraph &digraph)
{
    json.beginArray();
    for (NodeId u = 0; u < digraph.numNodes(); ++u) {
        for (NodeId v : digraph.successors(u)) {
            json.beginArray();
            json.value(u);
            json.value(v);
            json.endArray();
        }
    }
    json.endArray();
}

void
writeLocalScheduleBody(JsonWriter &json, const LocalSchedule &schedule)
{
    json.beginObject();
    json.key("grid");
    writeGridSpec(json, schedule.grid);
    json.key("executionTime").value(schedule.executionTime());
    json.key("physicalExecutionTime")
        .value(schedule.physicalExecutionTime());
    json.key("routingFusions").value(schedule.routingFusions);
    json.key("edgeFusions").value(schedule.edgeFusions);
    json.key("layers").beginArray();
    for (const ExecutionLayer &layer : schedule.layers) {
        json.beginObject();
        json.key("computeCells").value(layer.computeCells);
        json.key("routingCells").value(layer.routingCells);
        json.key("nodes");
        writeI32Array(json, layer.nodes);
        json.endObject();
    }
    json.endArray();
    json.key("nodeLayer");
    writeI32Array(json, schedule.nodeLayer);
    json.endObject();
}

void
writeScheduleBody(JsonWriter &json, const Schedule &schedule)
{
    json.beginObject();
    json.key("makespan").value(schedule.makespan);
    json.key("mainStart");
    writeI32Array(json, schedule.mainStart);
    json.key("syncStart");
    writeI32Array(json, schedule.syncStart);
    json.endObject();
}

void
writeCacheStats(JsonWriter &json, const CacheStats &stats)
{
    json.beginObject();
    json.key("hits").value(
        static_cast<unsigned long long>(stats.hits));
    json.key("misses").value(
        static_cast<unsigned long long>(stats.misses));
    json.key("evictions").value(
        static_cast<unsigned long long>(stats.evictions));
    json.key("diskHits").value(
        static_cast<unsigned long long>(stats.diskHits));
    json.key("diskWrites").value(
        static_cast<unsigned long long>(stats.diskWrites));
    json.endObject();
}

} // namespace

std::string
toJson(const Circuit &circuit)
{
    JsonWriter json;
    json.beginObject();
    json.key("artifact").value("circuit");
    json.key("name").value(circuit.name());
    json.key("numQubits").value(circuit.numQubits());
    json.key("numGates")
        .value(static_cast<long long>(circuit.numGates()));
    json.key("numTwoQubitGates")
        .value(static_cast<long long>(circuit.numTwoQubitGates()));
    json.key("depth").value(circuit.depth());
    json.key("gates").beginArray();
    for (const Gate &gate : circuit.gates()) {
        json.beginObject();
        json.key("kind").value(gateKindName(gate.kind));
        json.key("qubits").beginArray();
        const QubitId used[3] = {gate.q0, gate.q1, gate.q2};
        for (int q = 0; q < gate.arity(); ++q)
            json.value(used[q]);
        json.endArray();
        if (gate.angle != 0.0)
            json.key("angle").value(gate.angle);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return json.take();
}

std::string
toJson(const Pattern &pattern)
{
    JsonWriter json;
    json.beginObject();
    json.key("artifact").value("pattern");
    json.key("numNodes").value(pattern.numNodes());
    json.key("numEdges").value(pattern.graph().numEdges());
    json.key("numWires").value(pattern.numWires());
    json.key("outputs");
    writeI32Array(json, pattern.outputs());
    json.key("measurementOrder");
    writeI32Array(json, pattern.measurementOrder());
    json.key("nodes").beginArray();
    for (NodeId u = 0; u < pattern.numNodes(); ++u) {
        json.beginObject();
        json.key("id").value(u);
        json.key("wire").value(pattern.wire(u));
        if (pattern.isOutput(u)) {
            json.key("output").value(true);
        } else {
            json.key("angle").value(pattern.angle(u));
            json.key("flow").value(pattern.flow(u));
        }
        json.endObject();
    }
    json.endArray();
    json.key("edges").beginArray();
    for (const Edge &e : pattern.graph().edges()) {
        json.beginArray();
        json.value(e.u);
        json.value(e.v);
        json.endArray();
    }
    json.endArray();
    const DependencyGraphs deps = buildDependencyGraphs(pattern);
    json.key("xDependencies");
    writeDigraphArcs(json, deps.xDeps);
    json.key("zDependencies");
    writeDigraphArcs(json, deps.zDeps);
    json.endObject();
    return json.take();
}

std::string
toJson(const DcMbqcConfig &config)
{
    JsonWriter json;
    json.beginObject();
    json.key("artifact").value("config");
    json.key("numQpus").value(config.numQpus);
    json.key("kmax").value(config.kmax);
    json.key("grid");
    writeGridSpec(json, config.grid);
    json.key("partition").beginObject();
    json.key("k").value(config.partition.k);
    json.key("epsilonQ").value(config.partition.epsilonQ);
    json.key("alphaMax").value(config.partition.alphaMax);
    json.key("gamma").value(config.partition.gamma);
    json.key("maxIterations").value(config.partition.maxIterations);
    json.key("seed").value(
        static_cast<unsigned long long>(config.partition.seed));
    json.endObject();
    json.key("useBdir").value(config.useBdir);
    json.key("bdir").beginObject();
    json.key("initialTemperature")
        .value(config.bdir.initialTemperature);
    json.key("coolingRate").value(config.bdir.coolingRate);
    json.key("maxIterations").value(config.bdir.maxIterations);
    json.key("seed").value(
        static_cast<unsigned long long>(config.bdir.seed));
    json.endObject();
    json.key("placementOrder")
        .value(config.order == PlacementOrder::Creation
                   ? "creation"
                   : "dependency-aware-rcm");
    json.endObject();
    return json.take();
}

std::string
toJson(const LocalSchedule &schedule)
{
    JsonWriter json;
    json.beginObject();
    json.key("artifact").value("local-schedule");
    json.key("schedule");
    writeLocalScheduleBody(json, schedule);
    json.endObject();
    return json.take();
}

std::string
toJson(const Schedule &schedule)
{
    JsonWriter json;
    json.beginObject();
    json.key("artifact").value("schedule");
    json.key("schedule");
    writeScheduleBody(json, schedule);
    json.endObject();
    return json.take();
}

std::string
toJson(const Graph &graph)
{
    JsonWriter json;
    json.beginObject();
    json.key("artifact").value("graph");
    json.key("numNodes").value(graph.numNodes());
    json.key("numEdges").value(graph.numEdges());
    json.key("edges").beginArray();
    for (const Edge &e : graph.edges()) {
        json.beginArray();
        json.value(e.u);
        json.value(e.v);
        json.value(e.weight);
        json.endArray();
    }
    json.endArray();
    json.endObject();
    return json.take();
}

std::string
toJson(const Digraph &digraph)
{
    JsonWriter json;
    json.beginObject();
    json.key("artifact").value("digraph");
    json.key("numNodes").value(digraph.numNodes());
    json.key("numArcs")
        .value(static_cast<long long>(digraph.numArcs()));
    json.key("arcs");
    writeDigraphArcs(json, digraph);
    json.endObject();
    return json.take();
}

namespace
{

/** Members of one ExecResult (shared by report + standalone JSON). */
void
writeExecResultBody(JsonWriter &json, const ExecResult &result)
{
    json.beginObject();
    json.key("backend").value(result.backend);
    json.key("label").value(result.label);
    json.key("shots").value(result.shots);
    json.key("completedShots").value(result.completedShots);
    json.key("numWires").value(result.numWires);
    json.key("seed").value(static_cast<long long>(result.seed));
    json.key("threads").value(result.threads);
    json.key("wallMillis").value(result.wallMillis);
    json.key("counts").beginObject();
    for (const auto &[bits, count] : result.counts)
        json.key(bits).value(static_cast<long long>(count));
    json.endObject();
    if (!result.probabilities.empty()) {
        json.key("probabilities").beginObject();
        for (const auto &[bits, probability] : result.probabilities)
            json.key(bits).value(probability);
        json.endObject();
    }
    if (result.analyticSuccessProbability >= 0.0) {
        json.key("lostShots").value(result.lostShots);
        json.key("lostPhotons")
            .value(static_cast<long long>(result.lostPhotons));
        json.key("survivalRate").value(result.survivalRate());
        json.key("analyticSuccessProbability")
            .value(result.analyticSuccessProbability);
        json.key("maxStorageCycles").value(result.maxStorageCycles);
        json.key("meanStorageCycles").value(result.meanStorageCycles);
    }
    if (!result.notes.empty()) {
        json.key("notes");
        writeStringArray(json, result.notes);
    }
    json.endObject();
}

} // namespace

std::string
toJson(const ExecResult &result)
{
    JsonWriter json;
    json.beginObject();
    json.key("artifact").value("exec-result");
    json.key("result");
    writeExecResultBody(json, result);
    json.endObject();
    return json.take();
}

std::string
toJson(const CompileReport &report)
{
    JsonWriter json;
    json.beginObject();
    json.key("artifact").value("compile-report");
    json.key("label").value(report.label);
    json.key("totalMillis").value(report.totalMillis);
    json.key("cacheHit").value(report.cacheHit);
    if (report.pattern) {
        json.key("retainedPattern").beginObject();
        json.key("photons").value(report.pattern->numNodes());
        json.key("wires").value(report.pattern->numWires());
        json.endObject();
    }
    if (report.cacheKey != 0) {
        char key[24];
        std::snprintf(key, sizeof(key), "%016llx",
                      static_cast<unsigned long long>(report.cacheKey));
        json.key("cacheKey").value(key);
    }
    if (report.cacheStats) {
        json.key("cacheStats");
        writeCacheStats(json, *report.cacheStats);
    }
    json.key("warnings");
    writeStringArray(json, report.warnings);
    json.key("stages").beginArray();
    for (const StageReport &stage : report.stages) {
        json.beginObject();
        json.key("pass").value(stage.pass);
        json.key("millis").value(stage.millis);
        json.key("status").value(stage.status.toString());
        if (!stage.note.empty())
            json.key("note").value(stage.note);
        json.endObject();
    }
    json.endArray();
    if (report.distributed) {
        const DcMbqcResult &result = *report.distributed;
        json.key("distributed").beginObject();
        json.key("executionTime").value(result.executionTime());
        json.key("requiredLifetime").value(result.requiredLifetime());
        json.key("tauLocal").value(result.metrics.tauLocal);
        json.key("tauRemote").value(result.metrics.tauRemote);
        json.key("numConnectors").value(result.numConnectors);
        json.key("partitionModularity")
            .value(result.partitionModularity);
        json.key("partitionImbalance")
            .value(result.partitionImbalance);
        json.key("partitionParts").value(result.partition.numParts());
        json.key("partitionAssignment").beginArray();
        for (int p : result.partition.assignment())
            json.value(p);
        json.endArray();
        json.key("localSchedules").beginArray();
        for (const LocalSchedule &local : result.localSchedules)
            writeLocalScheduleBody(json, local);
        json.endArray();
        json.key("schedule");
        writeScheduleBody(json, result.schedule);
        json.endObject();
    }
    if (!report.executions.empty()) {
        json.key("executions").beginArray();
        for (const ExecResult &execution : report.executions)
            writeExecResultBody(json, execution);
        json.endArray();
    }
    if (report.portfolio) {
        const PortfolioReport &race = *report.portfolio;
        json.key("portfolio").beginObject();
        json.key("requested").value(race.requested);
        json.key("winnerIndex").value(race.winnerIndex);
        json.key("raceMillis").value(race.raceMillis);
        json.key("cancelledEarly").value(race.cancelledEarly);
        json.key("validated").value(race.validated);
        if (!race.validationNote.empty())
            json.key("validationNote").value(race.validationNote);
        json.key("candidates").beginArray();
        for (const PortfolioCandidate &entry : race.candidates) {
            json.beginObject();
            json.key("strategy").value(entry.strategy);
            json.key("seed").value(
                static_cast<unsigned long long>(entry.seed));
            json.key("status").value(entry.status.toString());
            if (entry.status.ok()) {
                json.key("logSurvival").value(entry.logSurvival);
                json.key("successProbability")
                    .value(entry.successProbability);
                json.key("makespan").value(entry.makespan);
                json.key("connectors").value(entry.connectors);
            }
            json.key("wallMillis").value(entry.wallMillis);
            json.key("cacheHit").value(entry.cacheHit);
            json.key("cancelled").value(entry.cancelled);
            json.key("winner").value(entry.winner);
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    if (report.baseline) {
        const BaselineResult &result = *report.baseline;
        json.key("baseline").beginObject();
        json.key("executionTime").value(result.executionTime());
        json.key("requiredLifetime").value(result.requiredLifetime());
        json.key("tauFusee").value(result.lifetime.tauFusee);
        json.key("tauMeasuree").value(result.lifetime.tauMeasuree);
        json.key("schedule");
        writeLocalScheduleBody(json, result.schedule);
        json.endObject();
    }
    json.endObject();
    return json.take();
}

} // namespace dcmbqc
