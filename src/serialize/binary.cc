#include "serialize/binary.hh"

#include <cstring>

namespace dcmbqc
{

std::uint64_t
fnv1a64(const std::uint8_t *data, std::size_t size, std::uint64_t seed)
{
    std::uint64_t hash = seed;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= data[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

void
BinaryWriter::writeU16(std::uint16_t value)
{
    bytes_.push_back(static_cast<std::uint8_t>(value));
    bytes_.push_back(static_cast<std::uint8_t>(value >> 8));
}

void
BinaryWriter::writeU32(std::uint32_t value)
{
    for (int shift = 0; shift < 32; shift += 8)
        bytes_.push_back(static_cast<std::uint8_t>(value >> shift));
}

void
BinaryWriter::writeU64(std::uint64_t value)
{
    for (int shift = 0; shift < 64; shift += 8)
        bytes_.push_back(static_cast<std::uint8_t>(value >> shift));
}

void
BinaryWriter::writeI32(std::int32_t value)
{
    writeU32(static_cast<std::uint32_t>(value));
}

void
BinaryWriter::writeI64(std::int64_t value)
{
    writeU64(static_cast<std::uint64_t>(value));
}

void
BinaryWriter::writeF64(double value)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value), "double is 64-bit");
    std::memcpy(&bits, &value, sizeof(bits));
    writeU64(bits);
}

void
BinaryWriter::writeString(const std::string &value)
{
    writeU32(static_cast<std::uint32_t>(value.size()));
    bytes_.insert(bytes_.end(), value.begin(), value.end());
}

void
BinaryWriter::writeI32Vector(const std::vector<std::int32_t> &values)
{
    writeU32(static_cast<std::uint32_t>(values.size()));
    for (std::int32_t v : values)
        writeI32(v);
}

void
BinaryWriter::writeF64Vector(const std::vector<double> &values)
{
    writeU32(static_cast<std::uint32_t>(values.size()));
    for (double v : values)
        writeF64(v);
}

void
BinaryWriter::writeBytes(const std::uint8_t *data, std::size_t size)
{
    bytes_.insert(bytes_.end(), data, data + size);
}

void
BinaryWriter::patchU64(std::size_t offset, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        bytes_[offset + i] =
            static_cast<std::uint8_t>(value >> (8 * i));
}

void
BinaryReader::fail(const std::string &message)
{
    if (status_.ok())
        status_ = Status::invalidArgument(message);
}

bool
BinaryReader::require(std::size_t bytes)
{
    if (!status_.ok())
        return false;
    if (size_ - pos_ < bytes) {
        fail("artifact truncated: need " + std::to_string(bytes) +
             " bytes at offset " + std::to_string(pos_) + ", have " +
             std::to_string(size_ - pos_));
        return false;
    }
    return true;
}

std::uint8_t
BinaryReader::readU8()
{
    if (!require(1))
        return 0;
    return data_[pos_++];
}

std::uint16_t
BinaryReader::readU16()
{
    if (!require(2))
        return 0;
    std::uint16_t value = 0;
    for (int i = 0; i < 2; ++i)
        value = static_cast<std::uint16_t>(
            value | static_cast<std::uint16_t>(data_[pos_++]) << (8 * i));
    return value;
}

std::uint32_t
BinaryReader::readU32()
{
    if (!require(4))
        return 0;
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return value;
}

std::uint64_t
BinaryReader::readU64()
{
    if (!require(8))
        return 0;
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return value;
}

std::int32_t
BinaryReader::readI32()
{
    return static_cast<std::int32_t>(readU32());
}

std::int64_t
BinaryReader::readI64()
{
    return static_cast<std::int64_t>(readU64());
}

double
BinaryReader::readF64()
{
    const std::uint64_t bits = readU64();
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

std::string
BinaryReader::readString()
{
    const std::uint32_t length = readCount(1);
    if (!ok())
        return {};
    std::string value(reinterpret_cast<const char *>(data_ + pos_),
                      length);
    pos_ += length;
    return value;
}

std::vector<std::int32_t>
BinaryReader::readI32Vector()
{
    const std::uint32_t count = readCount(4);
    std::vector<std::int32_t> values;
    values.reserve(count);
    for (std::uint32_t i = 0; i < count && ok(); ++i)
        values.push_back(readI32());
    return values;
}

std::vector<double>
BinaryReader::readF64Vector()
{
    const std::uint32_t count = readCount(8);
    std::vector<double> values;
    values.reserve(count);
    for (std::uint32_t i = 0; i < count && ok(); ++i)
        values.push_back(readF64());
    return values;
}

std::vector<std::uint8_t>
BinaryReader::readBytes(std::size_t size)
{
    if (!require(size))
        return {};
    std::vector<std::uint8_t> bytes(data_ + pos_,
                                    data_ + pos_ + size);
    pos_ += size;
    return bytes;
}

std::uint32_t
BinaryReader::readCount(std::size_t element_size)
{
    const std::uint32_t count = readU32();
    if (!ok())
        return 0;
    if (static_cast<std::uint64_t>(count) * element_size >
        size_ - pos_) {
        fail("artifact corrupted: element count " +
             std::to_string(count) + " exceeds remaining " +
             std::to_string(size_ - pos_) + " bytes");
        return 0;
    }
    return count;
}

} // namespace dcmbqc
