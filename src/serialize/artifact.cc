#include "serialize/artifact.hh"

#include <cstdio>

#include "serialize/binary.hh"

namespace dcmbqc
{

namespace
{

constexpr std::uint8_t kMagic[4] = {'D', 'C', 'M', 'B'};
constexpr std::size_t kHeaderSize = 16;
constexpr std::size_t kChecksumSize = 8;

bool
knownKind(std::uint16_t kind)
{
    return kind >= static_cast<std::uint16_t>(ArtifactKind::Circuit) &&
        kind <= static_cast<std::uint16_t>(ArtifactKind::NoiseConfig);
}

} // namespace

const char *
artifactKindName(ArtifactKind kind)
{
    switch (kind) {
      case ArtifactKind::Circuit: return "circuit";
      case ArtifactKind::Graph: return "graph";
      case ArtifactKind::Digraph: return "digraph";
      case ArtifactKind::Pattern: return "pattern";
      case ArtifactKind::Config: return "config";
      case ArtifactKind::LocalSchedule: return "local-schedule";
      case ArtifactKind::Schedule: return "schedule";
      case ArtifactKind::CompileReport: return "compile-report";
      case ArtifactKind::ExecResult: return "exec-result";
      case ArtifactKind::NoiseConfig: return "noise-config";
    }
    return "?";
}

std::vector<std::uint8_t>
sealArtifact(ArtifactKind kind, const std::vector<std::uint8_t> &payload)
{
    BinaryWriter writer;
    writer.writeBytes(kMagic, sizeof(kMagic));
    writer.writeU16(artifactFormatVersion);
    writer.writeU16(static_cast<std::uint16_t>(kind));
    writer.writeU64(payload.size());
    writer.writeBytes(payload.data(), payload.size());
    writer.writeU64(fnv1a64(payload.data(), payload.size()));
    return writer.take();
}

Expected<ArtifactView>
openArtifact(const std::uint8_t *data, std::size_t size)
{
    if (size < kHeaderSize + kChecksumSize)
        return Status::invalidArgument(
            "artifact truncated: " + std::to_string(size) +
            " bytes, need at least " +
            std::to_string(kHeaderSize + kChecksumSize));
    for (std::size_t i = 0; i < sizeof(kMagic); ++i) {
        if (data[i] != kMagic[i])
            return Status::invalidArgument(
                "not a dcmbqc artifact (bad magic)");
    }

    BinaryReader reader(data + sizeof(kMagic), size - sizeof(kMagic));
    const std::uint16_t version = reader.readU16();
    const std::uint16_t raw_kind = reader.readU16();
    const std::uint64_t payload_size = reader.readU64();

    if (version == 0 || version > artifactFormatVersion)
        return Status::invalidArgument(
            "unsupported artifact version " + std::to_string(version) +
            " (this build reads <= " +
            std::to_string(artifactFormatVersion) + ")");
    if (!knownKind(raw_kind))
        return Status::invalidArgument("unknown artifact kind tag " +
                                       std::to_string(raw_kind));
    if (payload_size != size - kHeaderSize - kChecksumSize)
        return Status::invalidArgument(
            "artifact size mismatch: header claims " +
            std::to_string(payload_size) + " payload bytes, file has " +
            std::to_string(size - kHeaderSize - kChecksumSize));

    ArtifactView view;
    view.kind = static_cast<ArtifactKind>(raw_kind);
    view.version = version;
    view.payload = data + kHeaderSize;
    view.payloadSize = static_cast<std::size_t>(payload_size);

    BinaryReader trailer(data + kHeaderSize + view.payloadSize,
                         kChecksumSize);
    view.checksum = trailer.readU64();
    const std::uint64_t actual =
        fnv1a64(view.payload, view.payloadSize);
    if (actual != view.checksum)
        return Status::invalidArgument(
            "artifact checksum mismatch: payload corrupted");
    return view;
}

Expected<ArtifactView>
openArtifact(const std::vector<std::uint8_t> &bytes)
{
    return openArtifact(bytes.data(), bytes.size());
}

Status
saveArtifactFile(const std::string &path,
                 const std::vector<std::uint8_t> &bytes)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (!file)
        return Status::invalidArgument("cannot open " + path +
                                       " for writing");
    const std::size_t written =
        bytes.empty() ? 0
                      : std::fwrite(bytes.data(), 1, bytes.size(), file);
    const bool closed = std::fclose(file) == 0;
    if (written != bytes.size() || !closed)
        return Status::internal("short write to " + path);
    return Status::okStatus();
}

Expected<std::vector<std::uint8_t>>
loadArtifactFile(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return Status::invalidArgument("cannot open " + path);
    std::vector<std::uint8_t> bytes;
    std::uint8_t chunk[4096];
    std::size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0)
        bytes.insert(bytes.end(), chunk, chunk + got);
    const bool failed = std::ferror(file) != 0;
    std::fclose(file);
    if (failed)
        return Status::internal("read error on " + path);
    return bytes;
}

} // namespace dcmbqc
