/**
 * @file
 * Versioned binary codecs for the core IR types. Every type has a
 * payload-level pair
 *
 *   encodeX(BinaryWriter &, const X &)      append the payload
 *   decodeX(BinaryReader &) -> X           bounds/consistency checked
 *
 * plus an artifact-level pair that wraps the payload into the
 * checksummed envelope of serialize/artifact.hh:
 *
 *   encodeXArtifact(const X &) -> bytes
 *   decodeXArtifact(bytes) -> Expected<X>
 *
 * Decoders never assert on malformed input: structural violations
 * (out-of-range node ids, inconsistent vector sizes, invalid enum
 * tags, embedded X/Z dependency sets that disagree with the decoded
 * flow) latch an InvalidArgument on the reader, and the artifact
 * wrapper returns it through Expected, matching the PR-1 error
 * channel.
 */

#ifndef DCMBQC_SERIALIZE_CODECS_HH
#define DCMBQC_SERIALIZE_CODECS_HH

#include "api/driver.hh"
#include "circuit/circuit.hh"
#include "compiler/execution_layer.hh"
#include "exec/result.hh"
#include "core/lsp.hh"
#include "core/pipeline.hh"
#include "graph/digraph.hh"
#include "graph/graph.hh"
#include "mbqc/pattern.hh"
#include "noise/config.hh"
#include "serialize/artifact.hh"
#include "serialize/binary.hh"

namespace dcmbqc
{

// --- Payload codecs --------------------------------------------------------

void encodeCircuit(BinaryWriter &writer, const Circuit &circuit);
Circuit decodeCircuit(BinaryReader &reader);

void encodeGraph(BinaryWriter &writer, const Graph &graph);
Graph decodeGraph(BinaryReader &reader);

void encodeDigraph(BinaryWriter &writer, const Digraph &digraph);
Digraph decodeDigraph(BinaryReader &reader);

/**
 * The pattern payload embeds the X/Z dependency sets derived from
 * the causal flow; decode recomputes them from the decoded flow and
 * rejects the artifact when they disagree (a deep corruption check
 * beyond the envelope checksum).
 */
void encodePattern(BinaryWriter &writer, const Pattern &pattern);
Pattern decodePattern(BinaryReader &reader);

void encodeConfig(BinaryWriter &writer, const DcMbqcConfig &config);
DcMbqcConfig decodeConfig(BinaryReader &reader);

void encodeLocalSchedule(BinaryWriter &writer,
                         const LocalSchedule &schedule);
LocalSchedule decodeLocalSchedule(BinaryReader &reader);

void encodeSchedule(BinaryWriter &writer, const Schedule &schedule);
Schedule decodeSchedule(BinaryReader &reader);

void encodeCompileReport(BinaryWriter &writer,
                         const CompileReport &report);
CompileReport decodeCompileReport(BinaryReader &reader);

void encodeExecResult(BinaryWriter &writer, const ExecResult &result);
ExecResult decodeExecResult(BinaryReader &reader);

/**
 * Mechanism names are checked against the noise registry on decode,
 * so an artifact naming a mechanism this build does not provide is
 * rejected structurally, not deferred to buildNoiseModel.
 */
void encodeNoiseConfig(BinaryWriter &writer, const NoiseConfig &config);
NoiseConfig decodeNoiseConfig(BinaryReader &reader);

// --- Artifact wrappers -----------------------------------------------------

std::vector<std::uint8_t> encodeCircuitArtifact(const Circuit &circuit);
Expected<Circuit>
decodeCircuitArtifact(const std::vector<std::uint8_t> &bytes);

std::vector<std::uint8_t> encodeGraphArtifact(const Graph &graph);
Expected<Graph>
decodeGraphArtifact(const std::vector<std::uint8_t> &bytes);

std::vector<std::uint8_t>
encodeDigraphArtifact(const Digraph &digraph);
Expected<Digraph>
decodeDigraphArtifact(const std::vector<std::uint8_t> &bytes);

std::vector<std::uint8_t> encodePatternArtifact(const Pattern &pattern);
Expected<Pattern>
decodePatternArtifact(const std::vector<std::uint8_t> &bytes);

std::vector<std::uint8_t>
encodeConfigArtifact(const DcMbqcConfig &config);
Expected<DcMbqcConfig>
decodeConfigArtifact(const std::vector<std::uint8_t> &bytes);

std::vector<std::uint8_t>
encodeLocalScheduleArtifact(const LocalSchedule &schedule);
Expected<LocalSchedule>
decodeLocalScheduleArtifact(const std::vector<std::uint8_t> &bytes);

std::vector<std::uint8_t>
encodeScheduleArtifact(const Schedule &schedule);
Expected<Schedule>
decodeScheduleArtifact(const std::vector<std::uint8_t> &bytes);

std::vector<std::uint8_t>
encodeCompileReportArtifact(const CompileReport &report);
Expected<CompileReport>
decodeCompileReportArtifact(const std::vector<std::uint8_t> &bytes);

std::vector<std::uint8_t>
encodeExecResultArtifact(const ExecResult &result);
Expected<ExecResult>
decodeExecResultArtifact(const std::vector<std::uint8_t> &bytes);

std::vector<std::uint8_t>
encodeNoiseConfigArtifact(const NoiseConfig &config);
Expected<NoiseConfig>
decodeNoiseConfigArtifact(const std::vector<std::uint8_t> &bytes);

} // namespace dcmbqc

#endif // DCMBQC_SERIALIZE_CODECS_HH
