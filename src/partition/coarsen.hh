/**
 * @file
 * Matching contraction for the multilevel partitioner, with an
 * optional parallel edge-aggregation path.
 *
 * Contraction dominates the coarsening phase on million-node
 * computation graphs (one hash probe per fine edge). The parallel
 * path chunks the fine edge list into fixed-size ranges (a function
 * of the edge count only, never the worker count), aggregates each
 * chunk's coarse pairs independently, and merges by (first global
 * edge index, first-occurrence orientation, exact integer weight
 * sum). Because `Graph::addEdge(merge_parallel)` appends each unique
 * pair at its first occurrence and only accumulates weight
 * afterwards, replaying the merged pairs sorted by first index
 * reproduces the sequential coarse graph byte for byte — same edge
 * order, same orientations, same adjacency layout — for any worker
 * count.
 */

#ifndef DCMBQC_PARTITION_COARSEN_HH
#define DCMBQC_PARTITION_COARSEN_HH

#include <vector>

#include "graph/graph.hh"

namespace dcmbqc
{

class ThreadPool;

/**
 * Contract `g` along a matching (`match[u]` = partner of u, or u
 * itself when unmatched). Coarse ids are assigned in fine-node order
 * (the lower endpoint of each matched pair names the coarse node).
 *
 * @param to_coarse Out-map from fine to coarse node ids.
 * @param pool Optional worker pool for the edge aggregation; null or
 *        single-threaded pools (and small graphs) use the sequential
 *        merge loop. The result is identical either way.
 */
Graph contractMatching(const Graph &g,
                       const std::vector<NodeId> &match,
                       std::vector<NodeId> &to_coarse,
                       ThreadPool *pool = nullptr);

} // namespace dcmbqc

#endif // DCMBQC_PARTITION_COARSEN_HH
