/**
 * @file
 * Adaptive graph partitioning — Algorithm 2 of the paper.
 *
 * Starts from a perfectly balanced k-way partition (alpha = 1) and
 * iteratively relaxes the balance constraint by the multiplicative
 * step factor gamma, accepting a new, less balanced partition only
 * when it yields a modularity gain larger than epsilon_Q. Terminates
 * when the gain stagnates or alpha reaches alpha_max.
 */

#ifndef DCMBQC_PARTITION_ADAPTIVE_HH
#define DCMBQC_PARTITION_ADAPTIVE_HH

#include <cstdint>

#include "graph/graph.hh"
#include "partition/partitioning.hh"

namespace dcmbqc
{

class NoiseModel;

/** Parameters of Algorithm 2 (paper defaults in Section V-A). */
struct AdaptiveConfig
{
    /** Number of QPUs / parts. */
    int k = 4;

    /** Modularity improvement threshold epsilon_Q. */
    double epsilonQ = 0.01;

    /** Maximum imbalance factor alpha_max. */
    double alphaMax = 1.5;

    /** Multiplicative step factor gamma (learning rate). */
    double gamma = 1.02;

    /** Safety cap on probe iterations. */
    int maxIterations = 256;

    std::uint64_t seed = 1;
};

/** Result of the adaptive search: best partition plus diagnostics. */
struct AdaptiveResult
{
    Partitioning best;

    /** Modularity of the best partition. */
    double modularity = -1.0;

    /** Imbalance alpha at which the best partition was found. */
    double alphaAtBest = 1.0;

    /** Cut size (number of cut edges = connector pairs). */
    int cutEdges = 0;

    /** Number of Partition(G, alpha) probes performed. */
    int probes = 0;

    /**
     * Static noise survival (log) of the best partition; only
     * meaningful when a noise model drove the selection.
     */
    double noiseLogSurvival = 0.0;
};

/**
 * Run Algorithm 2: adaptive graph partitioning.
 *
 * With a noise model, the probe trajectory (which alphas are tried,
 * driven purely by modularity deltas) is unchanged, but the *best*
 * candidate is selected by static noise survival
 * (`partitionLogSurvival`) instead of modularity — so over the same
 * candidate set the noise-aware choice never survives worse than the
 * noise-blind one. Without a model, behavior is bit-identical to the
 * noise-free algorithm.
 *
 * @param g The computation graph (nodes = resource units).
 * @param noise Optional noise model driving candidate selection.
 * @return Best partition found with diagnostics.
 */
AdaptiveResult adaptivePartition(const Graph &g,
                                 const AdaptiveConfig &config = {},
                                 const NoiseModel *noise = nullptr);

} // namespace dcmbqc

#endif // DCMBQC_PARTITION_ADAPTIVE_HH
