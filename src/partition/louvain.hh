/**
 * @file
 * Louvain community detection (Blondel et al. [9]). The paper cites
 * community detection as the modularity-maximizing extreme of the
 * imbalance/modularity trade-off that Algorithm 2 navigates; we use
 * Louvain as a modularity reference point in tests and ablations.
 */

#ifndef DCMBQC_PARTITION_LOUVAIN_HH
#define DCMBQC_PARTITION_LOUVAIN_HH

#include <cstdint>

#include "graph/graph.hh"
#include "partition/partitioning.hh"

namespace dcmbqc
{

/** Parameters for Louvain community detection. */
struct LouvainConfig
{
    /** Minimum modularity gain to keep iterating a local-move pass. */
    double minGain = 1e-7;

    /** Maximum number of aggregation levels. */
    int maxLevels = 16;

    std::uint64_t seed = 1;

    /**
     * Workers for the concurrent move rounds (<= 0 uses the hardware
     * default). When `compilePathConfig().parallelPartition` is on,
     * local moves run as propose-parallel / apply-sequential rounds:
     * proposals are computed against the community state frozen at
     * the round start and applied in the seed-pinned node order with
     * an O(deg) revalidation, so the communities depend only on
     * (graph, seed) — never on the worker count. The round-based
     * schedule may converge to different (equally valid) communities
     * than the sequential immediate-apply schedule, which remains
     * available as the reference path when the flag is off.
     */
    int numWorkers = 0;
};

/**
 * Run Louvain community detection.
 *
 * @return A partitioning whose number of parts equals the number of
 *         detected communities (dense ids).
 */
Partitioning louvain(const Graph &g, const LouvainConfig &config = {});

} // namespace dcmbqc

#endif // DCMBQC_PARTITION_LOUVAIN_HH
