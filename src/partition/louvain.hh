/**
 * @file
 * Louvain community detection (Blondel et al. [9]). The paper cites
 * community detection as the modularity-maximizing extreme of the
 * imbalance/modularity trade-off that Algorithm 2 navigates; we use
 * Louvain as a modularity reference point in tests and ablations.
 */

#ifndef DCMBQC_PARTITION_LOUVAIN_HH
#define DCMBQC_PARTITION_LOUVAIN_HH

#include <cstdint>

#include "graph/graph.hh"
#include "partition/partitioning.hh"

namespace dcmbqc
{

/** Parameters for Louvain community detection. */
struct LouvainConfig
{
    /** Minimum modularity gain to keep iterating a local-move pass. */
    double minGain = 1e-7;

    /** Maximum number of aggregation levels. */
    int maxLevels = 16;

    std::uint64_t seed = 1;
};

/**
 * Run Louvain community detection.
 *
 * @return A partitioning whose number of parts equals the number of
 *         detected communities (dense ids).
 */
Partitioning louvain(const Graph &g, const LouvainConfig &config = {});

} // namespace dcmbqc

#endif // DCMBQC_PARTITION_LOUVAIN_HH
