#include "partition/adaptive.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "noise/analysis.hh"
#include "partition/modularity.hh"
#include "partition/multilevel.hh"

namespace dcmbqc
{

AdaptiveResult
adaptivePartition(const Graph &g, const AdaptiveConfig &config,
                  const NoiseModel *noise)
{
    DCMBQC_ASSERT(config.k >= 1, "adaptivePartition: k >= 1 required");
    DCMBQC_ASSERT(config.gamma > 1.0, "gamma must exceed 1");

    AdaptiveResult result;
    result.best = Partitioning(g.numNodes(), config.k);

    double alpha = 1.0;
    double q_best = -1.0;
    // Selection score of the best candidate so far: modularity when
    // noise-blind, static log survival when noise-aware. The alpha
    // adaptation below reads modularity deltas only, so the probe
    // trajectory — and with it the candidate set — is identical
    // either way.
    double score_best = noise ? -HUGE_VAL : -1.0;
    double previous_q = -1.0;

    for (int iter = 0; iter < config.maxIterations; ++iter) {
        MultilevelConfig ml;
        ml.k = config.k;
        ml.alpha = alpha;
        ml.seed = config.seed + static_cast<std::uint64_t>(iter) * 0x9e37;
        Partitioning p = MultilevelPartitioner(ml).partition(g);
        const double q = modularity(g, p);
        ++result.probes;

        const double score =
            noise ? partitionLogSurvival(g, p, *noise) : q;
        if (score > score_best) {
            score_best = score;
            q_best = q;
            result.best = p;
            result.alphaAtBest = alpha;
            if (noise)
                result.noiseLogSurvival = score;
        }

        const double delta_q = q - previous_q;
        previous_q = q;

        if (delta_q > config.epsilonQ && alpha < config.alphaMax) {
            alpha = std::min(alpha * config.gamma, config.alphaMax);
        } else if (delta_q < -config.epsilonQ) {
            alpha = std::max(alpha / config.gamma, 1.0);
            // Revisiting a lower alpha with the same seed schedule
            // still counts toward the iteration budget; stop once we
            // bounce at the floor.
            if (alpha <= 1.0)
                break;
        } else {
            break;
        }
    }

    result.modularity = q_best;
    result.cutEdges = result.best.numCutEdges(g);
    return result;
}

} // namespace dcmbqc
