/**
 * @file
 * Newman modularity [39], the structural-quality metric that
 * Algorithm 2 maximizes while relaxing the balance constraint.
 */

#ifndef DCMBQC_PARTITION_MODULARITY_HH
#define DCMBQC_PARTITION_MODULARITY_HH

#include "graph/graph.hh"
#include "partition/partitioning.hh"

namespace dcmbqc
{

/**
 * Weighted modularity of a partition:
 *   Q = sum_c [ e_c / m  -  (d_c / (2 m))^2 ]
 * where m is the total edge weight, e_c the intra-community edge
 * weight and d_c the total weighted degree of community c.
 *
 * @return Q in [-0.5, 1]; 0 for an empty graph.
 */
double modularity(const Graph &g, const Partitioning &p);

} // namespace dcmbqc

#endif // DCMBQC_PARTITION_MODULARITY_HH
