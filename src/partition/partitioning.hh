/**
 * @file
 * Representation of a k-way partition of a graph plus the quality
 * measures used throughout Section IV-A of the paper: edge cut
 * (communication volume), imbalance (workload balance), and the
 * part sizes needed to evaluate the balance constraint alpha.
 */

#ifndef DCMBQC_PARTITION_PARTITIONING_HH
#define DCMBQC_PARTITION_PARTITIONING_HH

#include <vector>

#include "common/types.hh"
#include "graph/graph.hh"

namespace dcmbqc
{

/**
 * A k-way assignment of graph nodes to parts [0, k).
 */
class Partitioning
{
  public:
    Partitioning() = default;

    /** Construct with all nodes in part 0. */
    Partitioning(NodeId num_nodes, int k);

    /** Construct from an explicit assignment vector. */
    Partitioning(std::vector<int> assignment, int k);

    int numParts() const { return k_; }
    NodeId numNodes() const
    {
        return static_cast<NodeId>(assignment_.size());
    }

    int part(NodeId u) const { return assignment_[u]; }
    void setPart(NodeId u, int p) { assignment_[u] = p; }

    const std::vector<int> &assignment() const { return assignment_; }

    /** Sum of weights of edges whose endpoints are in different parts. */
    long long cutWeight(const Graph &g) const;

    /** Number of cut edges (each cut edge = one connector pair). */
    int numCutEdges(const Graph &g) const;

    /** Node-weight of each part. */
    std::vector<long long> partWeights(const Graph &g) const;

    /**
     * Imbalance factor: max part weight divided by the ideal weight
     * ceil(totalWeight / k). 1.0 means perfectly balanced.
     */
    double imbalance(const Graph &g) const;

    /** Nodes of each part, in increasing node order. */
    std::vector<std::vector<NodeId>> partMembers() const;

  private:
    std::vector<int> assignment_;
    int k_ = 1;
};

} // namespace dcmbqc

#endif // DCMBQC_PARTITION_PARTITIONING_HH
