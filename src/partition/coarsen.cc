#include "partition/coarsen.hh"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "common/thread_pool.hh"

namespace dcmbqc
{

namespace
{

/** Chunk size of the parallel edge aggregation. Fixed so the chunk
 *  decomposition depends on the edge count only, not the workers. */
constexpr std::size_t kContractChunk = 1 << 16;

/** Key for an undirected coarse node pair. */
std::uint64_t
coarseKey(NodeId a, NodeId b)
{
    const std::uint64_t lo = static_cast<std::uint32_t>(std::min(a, b));
    const std::uint64_t hi = static_cast<std::uint32_t>(std::max(a, b));
    return (hi << 32) | lo;
}

/** Aggregated coarse pair: first fine-edge index fixes both the
 *  emission position and the stored (u, v) orientation. */
struct CoarseAcc
{
    std::size_t first;
    NodeId cu;
    NodeId cv;
    int weight;
};

void
assignCoarseIds(const Graph &g, const std::vector<NodeId> &match,
                std::vector<NodeId> &to_coarse, NodeId &num_coarse)
{
    const NodeId n = g.numNodes();
    to_coarse.assign(n, invalidNode);
    NodeId next = 0;
    for (NodeId u = 0; u < n; ++u) {
        if (to_coarse[u] != invalidNode)
            continue;
        const NodeId partner = match[u];
        to_coarse[u] = next;
        if (partner != u)
            to_coarse[partner] = next;
        ++next;
    }
    num_coarse = next;
}

} // namespace

Graph
contractMatching(const Graph &g, const std::vector<NodeId> &match,
                 std::vector<NodeId> &to_coarse, ThreadPool *pool)
{
    const NodeId n = g.numNodes();
    NodeId next = 0;
    assignCoarseIds(g, match, to_coarse, next);

    Graph coarse(next);
    std::vector<int> weights(next, 0);
    for (NodeId u = 0; u < n; ++u)
        weights[to_coarse[u]] += g.nodeWeight(u);
    for (NodeId cu = 0; cu < next; ++cu)
        coarse.setNodeWeight(cu, weights[cu]);

    const auto &edges = g.edges();
    const bool use_parallel = pool != nullptr &&
        pool->numThreads() > 1 && edges.size() >= 2 * kContractChunk;

    if (!use_parallel) {
        for (const auto &e : edges) {
            const NodeId cu = to_coarse[e.u];
            const NodeId cv = to_coarse[e.v];
            if (cu != cv)
                coarse.addEdge(cu, cv, e.weight,
                               /*merge_parallel=*/true);
        }
        return coarse;
    }

    // Per-chunk aggregation (workers), then an order-invariant merge
    // keyed on the first fine-edge index of each coarse pair.
    const std::size_t num_chunks =
        (edges.size() + kContractChunk - 1) / kContractChunk;
    std::vector<std::unordered_map<std::uint64_t, CoarseAcc>> maps(
        num_chunks);
    for (std::size_t c = 0; c < num_chunks; ++c) {
        pool->submit([&, c] {
            const std::size_t begin = c * kContractChunk;
            const std::size_t end =
                std::min(begin + kContractChunk, edges.size());
            auto &map = maps[c];
            for (std::size_t i = begin; i < end; ++i) {
                const auto &e = edges[i];
                const NodeId cu = to_coarse[e.u];
                const NodeId cv = to_coarse[e.v];
                if (cu == cv)
                    continue;
                auto [it, inserted] = map.emplace(
                    coarseKey(cu, cv), CoarseAcc{i, cu, cv, e.weight});
                if (!inserted)
                    it->second.weight += e.weight;
            }
        });
    }
    pool->wait();

    std::unordered_map<std::uint64_t, CoarseAcc> merged;
    for (auto &map : maps) {
        for (auto &[key, acc] : map) {
            auto [it, inserted] = merged.emplace(key, acc);
            if (inserted)
                continue;
            CoarseAcc &into = it->second;
            into.weight += acc.weight;
            if (acc.first < into.first) {
                into.first = acc.first;
                into.cu = acc.cu;
                into.cv = acc.cv;
            }
        }
    }

    std::vector<const CoarseAcc *> order;
    order.reserve(merged.size());
    for (const auto &[key, acc] : merged)
        order.push_back(&acc);
    std::sort(order.begin(), order.end(),
              [](const CoarseAcc *a, const CoarseAcc *b) {
                  return a->first < b->first;
              });
    for (const CoarseAcc *acc : order)
        coarse.addEdge(acc->cu, acc->cv, acc->weight,
                       /*merge_parallel=*/false);
    return coarse;
}

} // namespace dcmbqc
