#include "partition/modularity.hh"

#include <vector>

namespace dcmbqc
{

double
modularity(const Graph &g, const Partitioning &p)
{
    const double m = static_cast<double>(g.totalEdgeWeight());
    if (m <= 0.0)
        return 0.0;

    std::vector<double> intra(p.numParts(), 0.0);
    std::vector<double> degree(p.numParts(), 0.0);
    for (const auto &e : g.edges()) {
        if (p.part(e.u) == p.part(e.v))
            intra[p.part(e.u)] += e.weight;
    }
    for (NodeId u = 0; u < g.numNodes(); ++u)
        degree[p.part(u)] += static_cast<double>(g.weightedDegree(u));

    double q = 0.0;
    for (int c = 0; c < p.numParts(); ++c) {
        const double ec = intra[c] / m;
        const double dc = degree[c] / (2.0 * m);
        q += ec - dc * dc;
    }
    return q;
}

} // namespace dcmbqc
