#include "partition/multilevel.hh"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "core/compile_path.hh"
#include "graph/matching.hh"
#include "partition/coarsen.hh"

namespace dcmbqc
{

namespace
{

/** One level of the coarsening hierarchy. */
struct CoarseLevel
{
    Graph graph;
    /** Map from this level's nodes to the next-coarser level. */
    std::vector<NodeId> toCoarse;
};

/**
 * Greedy graph-growing initial partition of the coarsest graph.
 * Grows k regions by BFS from random seeds, then assigns leftovers
 * to the lightest part among their neighbors.
 */
Partitioning
initialPartition(const Graph &g, int k, long long max_part_weight,
                 Rng &rng)
{
    const NodeId n = g.numNodes();
    std::vector<int> assign(n, -1);
    std::vector<long long> part_weight(k, 0);

    std::vector<NodeId> seeds(n);
    std::iota(seeds.begin(), seeds.end(), 0);
    rng.shuffle(seeds);

    std::size_t seed_cursor = 0;
    std::vector<NodeId> queue;
    for (int p = 0; p < k; ++p) {
        // Find an unassigned seed.
        while (seed_cursor < seeds.size() && assign[seeds[seed_cursor]] >= 0)
            ++seed_cursor;
        if (seed_cursor >= seeds.size())
            break;
        const NodeId start = seeds[seed_cursor];
        queue.clear();
        queue.push_back(start);
        assign[start] = p;
        part_weight[p] += g.nodeWeight(start);
        std::size_t head = 0;
        while (head < queue.size() && part_weight[p] < max_part_weight) {
            NodeId u = queue[head++];
            for (const auto &adj : g.adjacency(u)) {
                const NodeId v = adj.neighbor;
                if (assign[v] >= 0)
                    continue;
                if (part_weight[p] + g.nodeWeight(v) > max_part_weight)
                    continue;
                assign[v] = p;
                part_weight[p] += g.nodeWeight(v);
                queue.push_back(v);
            }
        }
    }

    // Leftovers: prefer the lightest neighboring part, else the
    // globally lightest part.
    for (NodeId u = 0; u < n; ++u) {
        if (assign[u] >= 0)
            continue;
        int best_part = -1;
        for (const auto &adj : g.adjacency(u)) {
            const int p = assign[adj.neighbor];
            if (p >= 0 && (best_part < 0 ||
                           part_weight[p] < part_weight[best_part])) {
                best_part = p;
            }
        }
        if (best_part < 0) {
            best_part = static_cast<int>(
                std::min_element(part_weight.begin(), part_weight.end()) -
                part_weight.begin());
        }
        assign[u] = best_part;
        part_weight[best_part] += g.nodeWeight(u);
    }

    return Partitioning(std::move(assign), k);
}

/**
 * Force every part below max_part_weight by moving nodes out of
 * overweight parts (cheapest cut penalty first), even at negative
 * gain. Needed because greedy initial partitioning can overfill the
 * part that absorbs leftovers.
 */
void
rebalancePass(const Graph &g, Partitioning &p, long long max_part_weight)
{
    const int k = p.numParts();
    auto part_weight = p.partWeights(g);

    for (int from = 0; from < k; ++from) {
        int guard = g.numNodes() + 1;
        while (part_weight[from] > max_part_weight && guard-- > 0) {
            // Pick the node of `from` whose move is cheapest.
            NodeId best_node = invalidNode;
            int best_part = -1;
            long long best_penalty = 0;
            for (NodeId u = 0; u < g.numNodes(); ++u) {
                if (p.part(u) != from)
                    continue;
                std::vector<long long> conn(k, 0);
                for (const auto &adj : g.adjacency(u))
                    conn[p.part(adj.neighbor)] += adj.weight;
                for (int q = 0; q < k; ++q) {
                    if (q == from)
                        continue;
                    if (part_weight[q] + g.nodeWeight(u) >
                        max_part_weight)
                        continue;
                    const long long penalty = conn[from] - conn[q];
                    if (best_node == invalidNode ||
                        penalty < best_penalty) {
                        best_node = u;
                        best_part = q;
                        best_penalty = penalty;
                    }
                }
            }
            if (best_node == invalidNode)
                break; // every other part is full; give up
            p.setPart(best_node, best_part);
            part_weight[from] -= g.nodeWeight(best_node);
            part_weight[best_part] += g.nodeWeight(best_node);
        }
    }
}

} // namespace

long long
refineBoundaryPass(const Graph &g, Partitioning &p,
                   long long max_part_weight)
{
    const int k = p.numParts();
    auto part_weight = p.partWeights(g);
    long long total_gain = 0;

    // Per-node connectivity to each part, computed lazily.
    std::vector<long long> conn(k, 0);

    for (NodeId u = 0; u < g.numNodes(); ++u) {
        const int from = p.part(u);
        bool boundary = false;
        std::fill(conn.begin(), conn.end(), 0);
        for (const auto &adj : g.adjacency(u)) {
            const int q = p.part(adj.neighbor);
            conn[q] += adj.weight;
            if (q != from)
                boundary = true;
        }
        if (!boundary)
            continue;

        int best_part = from;
        long long best_gain = 0;
        for (int q = 0; q < k; ++q) {
            if (q == from)
                continue;
            if (part_weight[q] + g.nodeWeight(u) > max_part_weight)
                continue;
            const long long gain = conn[q] - conn[from];
            if (gain > best_gain ||
                (gain == best_gain && gain > 0 &&
                 part_weight[q] < part_weight[best_part])) {
                best_gain = gain;
                best_part = q;
            }
        }
        if (best_part != from && best_gain > 0) {
            p.setPart(u, best_part);
            part_weight[from] -= g.nodeWeight(u);
            part_weight[best_part] += g.nodeWeight(u);
            total_gain += best_gain;
        }
    }
    return total_gain;
}

MultilevelPartitioner::MultilevelPartitioner(MultilevelConfig config)
    : config_(std::move(config))
{
    DCMBQC_ASSERT(config_.k >= 1, "k must be positive");
    DCMBQC_ASSERT(config_.alpha >= 1.0, "alpha must be >= 1");
}

Partitioning
MultilevelPartitioner::partition(const Graph &g) const
{
    const int k = config_.k;
    if (k == 1 || g.numNodes() == 0)
        return Partitioning(g.numNodes(), std::max(k, 1));

    Rng rng(config_.seed);

    const long long total = g.totalNodeWeight();
    int max_node_weight = 1;
    for (NodeId u = 0; u < g.numNodes(); ++u)
        max_node_weight = std::max(max_node_weight, g.nodeWeight(u));
    // Allow one max-weight node of slack so a feasible partition
    // always exists even for alpha = 1.
    const long long max_part_weight = std::max<long long>(
        static_cast<long long>(std::ceil(
            config_.alpha * static_cast<double>(total) /
            static_cast<double>(k))) + max_node_weight,
        max_node_weight);

    // --- Coarsening phase ------------------------------------------------
    std::vector<CoarseLevel> levels;
    levels.push_back({g, {}});
    const NodeId coarsen_target = std::max<NodeId>(
        static_cast<NodeId>(config_.coarsenTargetPerPart) * k, 2 * k);

    // One pool shared across all contraction levels; worker count
    // only changes wall clock, never the coarse graphs (the merge in
    // contractMatching is order-invariant by construction).
    std::unique_ptr<ThreadPool> pool;
    if (compilePathConfig().parallelPartition) {
        const int workers = config_.numWorkers > 0
            ? config_.numWorkers
            : ThreadPool::defaultNumThreads();
        if (workers > 1)
            pool = std::make_unique<ThreadPool>(workers);
    }

    while (levels.back().graph.numNodes() > coarsen_target) {
        const Graph &current = levels.back().graph;
        std::vector<NodeId> match;
        heavyEdgeMatching(current, rng, match);
        std::vector<NodeId> to_coarse;
        Graph coarse =
            contractMatching(current, match, to_coarse, pool.get());
        if (coarse.numNodes() >=
            static_cast<NodeId>(0.95 * current.numNodes())) {
            break; // matching stagnated (e.g., star graphs)
        }
        levels.back().toCoarse = std::move(to_coarse);
        levels.push_back({std::move(coarse), {}});
    }

    // --- Initial partition on the coarsest graph -------------------------
    Partitioning part =
        initialPartition(levels.back().graph, k, max_part_weight, rng);
    rebalancePass(levels.back().graph, part, max_part_weight);
    for (int pass = 0; pass < config_.refinePasses; ++pass)
        if (refineBoundaryPass(levels.back().graph, part,
                               max_part_weight) == 0)
            break;

    // --- Uncoarsening with refinement -------------------------------------
    for (std::size_t level = levels.size() - 1; level-- > 0;) {
        const auto &fine = levels[level];
        std::vector<int> fine_assign(fine.graph.numNodes());
        for (NodeId u = 0; u < fine.graph.numNodes(); ++u)
            fine_assign[u] = part.part(fine.toCoarse[u]);
        part = Partitioning(std::move(fine_assign), k);
        rebalancePass(fine.graph, part, max_part_weight);
        for (int pass = 0; pass < config_.refinePasses; ++pass)
            if (refineBoundaryPass(fine.graph, part, max_part_weight) == 0)
                break;
    }

    // --- Sequential-slab candidate ----------------------------------------
    // MBQC computation graphs are temporally local (node ids follow
    // circuit time), so contiguous slabs cut few edges. The cut
    // boundaries snap to low-flux positions (e.g. gate-block
    // boundaries) within the balance window.
    if (config_.useSequentialCandidate && g.numNodes() > k) {
        const NodeId n = g.numNodes();
        // flux[p] = weight of edges crossing between ids p-1 and p.
        std::vector<long long> flux(n + 1, 0);
        for (const auto &e : g.edges()) {
            const NodeId lo = std::min(e.u, e.v);
            const NodeId hi = std::max(e.u, e.v);
            flux[lo + 1] += e.weight;
            flux[hi + 1] -= e.weight;
        }
        for (NodeId p = 1; p <= n; ++p)
            flux[p] += flux[p - 1];

        std::vector<long long> prefix_weight(n + 1, 0);
        for (NodeId u = 0; u < n; ++u)
            prefix_weight[u + 1] = prefix_weight[u] + g.nodeWeight(u);

        // Greedy left-to-right: place boundary b in the window that
        // keeps every part (including the remaining suffix) within
        // max_part_weight, at the flux minimum.
        std::vector<NodeId> cuts;
        NodeId prev = 0;
        bool feasible = true;
        for (int b = 1; b < k && feasible; ++b) {
            // Window on prefix weight: the finished parts must not
            // exceed the cap, and the remaining suffix must fit into
            // the remaining parts.
            const long long hi_weight =
                prefix_weight[prev] + max_part_weight;
            const long long lo_weight =
                total - static_cast<long long>(k - b) * max_part_weight;
            NodeId best = invalidNode;
            for (NodeId p = prev + 1; p < n; ++p) {
                if (prefix_weight[p] > hi_weight)
                    break;
                if (prefix_weight[p] < lo_weight)
                    continue;
                if (best == invalidNode || flux[p] < flux[best])
                    best = p;
            }
            if (best == invalidNode) {
                feasible = false;
                break;
            }
            cuts.push_back(best);
            prev = best;
        }

        if (feasible) {
            std::vector<int> slab(n, k - 1);
            NodeId start = 0;
            for (int b = 0; b < static_cast<int>(cuts.size()); ++b) {
                for (NodeId u = start; u < cuts[b]; ++u)
                    slab[u] = b;
                start = cuts[b];
            }
            Partitioning slab_part(std::move(slab), k);
            for (int pass = 0; pass < config_.refinePasses; ++pass)
                if (refineBoundaryPass(g, slab_part,
                                       max_part_weight) == 0)
                    break;
            if (slab_part.cutWeight(g) < part.cutWeight(g))
                part = std::move(slab_part);
        }
    }

    return part;
}

} // namespace dcmbqc
