#include "partition/louvain.hh"

#include <algorithm>
#include <memory>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "core/compile_path.hh"

namespace dcmbqc
{

namespace
{

/**
 * One level of Louvain local moves. `self_weight[u]` carries the
 * intra-community edge weight absorbed by coarse node u from
 * previous aggregation levels (a self-loop of weight w contributes
 * 2w to the node's degree); `two_m` is 2x the total edge weight of
 * the ORIGINAL graph, which is invariant across levels.
 */
bool
localMovePhase(const Graph &g, const std::vector<double> &self_weight,
               double two_m, std::vector<int> &community, Rng &rng,
               double min_gain)
{
    const NodeId n = g.numNodes();
    if (two_m <= 0.0)
        return false;

    std::vector<double> degree(n, 0.0);
    for (NodeId u = 0; u < n; ++u)
        degree[u] = static_cast<double>(g.weightedDegree(u)) +
            2.0 * self_weight[u];

    std::vector<double> community_degree(n, 0.0);
    for (NodeId u = 0; u < n; ++u)
        community_degree[community[u]] += degree[u];

    std::vector<NodeId> order(n);
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);

    bool any_move = false;
    bool improved = true;
    std::unordered_map<int, double> neighbor_weight;
    int guard = 0;
    while (improved && guard++ < 64) {
        improved = false;
        for (NodeId u : order) {
            const int from = community[u];
            neighbor_weight.clear();
            for (const auto &adj : g.adjacency(u))
                neighbor_weight[community[adj.neighbor]] +=
                    static_cast<double>(adj.weight);

            community_degree[from] -= degree[u];

            // Standard Louvain comparator: with u removed from its
            // community, score(c) = k_{u,c} - deg(u) * Sigma_c / 2m
            // is the modularity gain of joining c up to a constant
            // factor; pick the argmax (staying in `from` included).
            auto score = [&](int c) {
                const double w = neighbor_weight.count(c)
                    ? neighbor_weight.at(c) : 0.0;
                return w - degree[u] * community_degree[c] / two_m;
            };
            int best = from;
            double best_score = score(from);
            for (const auto &[c, w] : neighbor_weight) {
                (void)w;
                if (c == from)
                    continue;
                const double s = score(c);
                if (s > best_score + min_gain) {
                    best_score = s;
                    best = c;
                }
            }
            community[u] = best;
            community_degree[best] += degree[u];
            if (best != from) {
                improved = true;
                any_move = true;
            }
        }
    }
    return any_move;
}

/** Node-chunk size of the parallel propose phase; fixed so the
 *  decomposition depends on the node count only, not the workers. */
constexpr std::size_t kProposeChunk = 2048;

/**
 * Propose-parallel / apply-sequential move rounds. Proposals are
 * computed against the community state frozen at the round start
 * (safe to evaluate concurrently: the round only reads); the
 * sequential apply sweep walks the same shuffled order as the
 * reference phase and revalidates each proposal against the current
 * state in O(deg) before committing. Both phases are functions of
 * (graph, seed) alone, so the result is identical for every worker
 * count, including the no-pool fallback.
 */
bool
localMovePhaseRounds(const Graph &g,
                     const std::vector<double> &self_weight,
                     double two_m, std::vector<int> &community,
                     Rng &rng, double min_gain, ThreadPool *pool)
{
    const NodeId n = g.numNodes();
    if (two_m <= 0.0)
        return false;

    std::vector<double> degree(n, 0.0);
    for (NodeId u = 0; u < n; ++u)
        degree[u] = static_cast<double>(g.weightedDegree(u)) +
            2.0 * self_weight[u];

    std::vector<double> community_degree(n, 0.0);
    for (NodeId u = 0; u < n; ++u)
        community_degree[community[u]] += degree[u];

    std::vector<NodeId> order(n);
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);

    // Best move of node u against the frozen round-start state.
    auto propose_one = [&](NodeId u,
                           std::unordered_map<int, double> &scratch) {
        const int from = community[u];
        scratch.clear();
        for (const auto &adj : g.adjacency(u))
            scratch[community[adj.neighbor]] +=
                static_cast<double>(adj.weight);
        auto score = [&](int c) {
            const double w = scratch.count(c) ? scratch.at(c) : 0.0;
            const double sigma = community_degree[c] -
                (c == from ? degree[u] : 0.0);
            return w - degree[u] * sigma / two_m;
        };
        int best = from;
        double best_score = score(from);
        for (const auto &[c, w] : scratch) {
            (void)w;
            if (c == from)
                continue;
            const double s = score(c);
            if (s > best_score + min_gain) {
                best_score = s;
                best = c;
            }
        }
        return best;
    };

    std::vector<int> proposal(n);
    std::unordered_map<int, double> neighbor_weight;
    bool any_move = false;
    bool improved = true;
    int guard = 0;
    while (improved && guard++ < 64) {
        improved = false;

        // Propose phase: read-only over the frozen state.
        const std::size_t num_chunks =
            (static_cast<std::size_t>(n) + kProposeChunk - 1) /
            kProposeChunk;
        if (pool != nullptr && pool->numThreads() > 1 &&
            num_chunks > 1) {
            for (std::size_t c = 0; c < num_chunks; ++c) {
                pool->submit([&, c] {
                    std::unordered_map<int, double> scratch;
                    const std::size_t begin = c * kProposeChunk;
                    const std::size_t end = std::min(
                        begin + kProposeChunk,
                        static_cast<std::size_t>(n));
                    for (std::size_t i = begin; i < end; ++i) {
                        const NodeId u = order[i];
                        proposal[u] = propose_one(u, scratch);
                    }
                });
            }
            pool->wait();
        } else {
            for (NodeId u : order)
                proposal[u] = propose_one(u, neighbor_weight);
        }

        // Apply phase: sequential sweep in the same shuffled order,
        // revalidating each proposal against the live state.
        for (NodeId u : order) {
            const int from = community[u];
            const int target = proposal[u];
            if (target == from)
                continue;
            neighbor_weight.clear();
            for (const auto &adj : g.adjacency(u))
                neighbor_weight[community[adj.neighbor]] +=
                    static_cast<double>(adj.weight);
            community_degree[from] -= degree[u];
            auto score = [&](int c) {
                const double w = neighbor_weight.count(c)
                    ? neighbor_weight.at(c) : 0.0;
                return w - degree[u] * community_degree[c] / two_m;
            };
            if (score(target) > score(from) + min_gain) {
                community[u] = target;
                community_degree[target] += degree[u];
                improved = true;
                any_move = true;
            } else {
                community_degree[from] += degree[u];
            }
        }
    }
    return any_move;
}

/** Renumber community ids to be dense; returns the number of parts. */
int
densify(std::vector<int> &community)
{
    std::unordered_map<int, int> remap;
    for (int &c : community) {
        auto [it, inserted] =
            remap.emplace(c, static_cast<int>(remap.size()));
        c = it->second;
    }
    return static_cast<int>(remap.size());
}

/**
 * Aggregate communities into a coarse graph, folding intra-community
 * edge weight (plus absorbed self weight) into `self_weight_out`.
 */
Graph
aggregate(const Graph &g, const std::vector<double> &self_weight,
          const std::vector<int> &community, int k,
          std::vector<double> &self_weight_out)
{
    Graph coarse(k);
    std::vector<int> weights(k, 0);
    self_weight_out.assign(k, 0.0);
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        weights[community[u]] += g.nodeWeight(u);
        self_weight_out[community[u]] += self_weight[u];
    }
    for (int c = 0; c < k; ++c)
        coarse.setNodeWeight(c, weights[c]);
    for (const auto &e : g.edges()) {
        const int cu = community[e.u];
        const int cv = community[e.v];
        if (cu != cv)
            coarse.addEdge(cu, cv, e.weight, /*merge_parallel=*/true);
        else
            self_weight_out[cu] += e.weight;
    }
    return coarse;
}

} // namespace

Partitioning
louvain(const Graph &g, const LouvainConfig &config)
{
    Rng rng(config.seed);
    const NodeId n = g.numNodes();
    const double two_m = 2.0 * static_cast<double>(g.totalEdgeWeight());

    std::vector<int> assignment(n);
    std::iota(assignment.begin(), assignment.end(), 0);

    Graph level_graph = g;
    std::vector<double> self_weight(n, 0.0);

    // Concurrent rounds are a semantic switch (round-based versus
    // immediate-apply move schedule), so the choice follows the
    // compile-path flag, never the worker count.
    const bool use_rounds = compilePathConfig().parallelPartition;
    std::unique_ptr<ThreadPool> pool;
    if (use_rounds) {
        const int workers = config.numWorkers > 0
            ? config.numWorkers
            : ThreadPool::defaultNumThreads();
        if (workers > 1)
            pool = std::make_unique<ThreadPool>(workers);
    }

    for (int level = 0; level < config.maxLevels; ++level) {
        std::vector<int> community(level_graph.numNodes());
        std::iota(community.begin(), community.end(), 0);
        const bool moved = use_rounds
            ? localMovePhaseRounds(level_graph, self_weight, two_m,
                                   community, rng, config.minGain,
                                   pool.get())
            : localMovePhase(level_graph, self_weight, two_m,
                             community, rng, config.minGain);
        if (!moved)
            break;
        const int k = densify(community);
        // Propagate to original nodes.
        for (NodeId u = 0; u < n; ++u)
            assignment[u] = community[assignment[u]];
        if (k == level_graph.numNodes())
            break;
        std::vector<double> next_self;
        level_graph = aggregate(level_graph, self_weight, community, k,
                                next_self);
        self_weight = std::move(next_self);
    }

    const int k = densify(assignment);
    return Partitioning(std::move(assignment), k);
}

} // namespace dcmbqc
