#include "partition/partitioning.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dcmbqc
{

Partitioning::Partitioning(NodeId num_nodes, int k)
    : assignment_(num_nodes, 0), k_(k)
{
    DCMBQC_ASSERT(k >= 1, "partition needs k >= 1");
}

Partitioning::Partitioning(std::vector<int> assignment, int k)
    : assignment_(std::move(assignment)), k_(k)
{
    DCMBQC_ASSERT(k >= 1, "partition needs k >= 1");
    for (int p : assignment_)
        DCMBQC_ASSERT(p >= 0 && p < k, "assignment out of range: ", p);
}

long long
Partitioning::cutWeight(const Graph &g) const
{
    long long cut = 0;
    for (const auto &e : g.edges())
        if (assignment_[e.u] != assignment_[e.v])
            cut += e.weight;
    return cut;
}

int
Partitioning::numCutEdges(const Graph &g) const
{
    int cut = 0;
    for (const auto &e : g.edges())
        if (assignment_[e.u] != assignment_[e.v])
            ++cut;
    return cut;
}

std::vector<long long>
Partitioning::partWeights(const Graph &g) const
{
    std::vector<long long> weights(k_, 0);
    for (NodeId u = 0; u < g.numNodes(); ++u)
        weights[assignment_[u]] += g.nodeWeight(u);
    return weights;
}

double
Partitioning::imbalance(const Graph &g) const
{
    const auto weights = partWeights(g);
    const long long total = g.totalNodeWeight();
    if (total == 0)
        return 1.0;
    const double ideal =
        static_cast<double>(total) / static_cast<double>(k_);
    const long long heaviest =
        *std::max_element(weights.begin(), weights.end());
    return static_cast<double>(heaviest) / ideal;
}

std::vector<std::vector<NodeId>>
Partitioning::partMembers() const
{
    std::vector<std::vector<NodeId>> members(k_);
    for (NodeId u = 0; u < numNodes(); ++u)
        members[assignment_[u]].push_back(u);
    return members;
}

} // namespace dcmbqc
