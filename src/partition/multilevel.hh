/**
 * @file
 * Multilevel k-way graph partitioner in the style of METIS
 * (Karypis-Kumar [32]): heavy-edge-matching coarsening, greedy
 * graph-growing initial partitioning on the coarsest graph, and
 * FM-style boundary refinement during uncoarsening. This plays the
 * role of the METIS `Partition(G, alpha)` call in Algorithm 2.
 */

#ifndef DCMBQC_PARTITION_MULTILEVEL_HH
#define DCMBQC_PARTITION_MULTILEVEL_HH

#include <cstdint>

#include "graph/graph.hh"
#include "partition/partitioning.hh"

namespace dcmbqc
{

/** Tuning parameters of the multilevel partitioner. */
struct MultilevelConfig
{
    /** Number of parts. */
    int k = 2;

    /**
     * Balance constraint: max part weight <= alpha * (total / k).
     * alpha = 1 requests a perfectly balanced partition (a slack of
     * one maximum node weight is always tolerated so a feasible
     * solution exists).
     */
    double alpha = 1.0;

    /** Stop coarsening below this node count (scaled by k). */
    int coarsenTargetPerPart = 30;

    /** Boundary refinement passes per uncoarsening level. */
    int refinePasses = 4;

    /**
     * Also evaluate a refined sequential-slab partition (contiguous
     * node-id blocks) and return whichever candidate cuts less.
     * MBQC computation graphs are temporally local -- node ids
     * follow circuit time -- so slabs often beat the multilevel
     * result on braid-shaped graphs (QAOA / QFT ladders).
     */
    bool useSequentialCandidate = true;

    /** RNG seed for matching and initial-partition randomization. */
    std::uint64_t seed = 1;

    /**
     * Workers for the parallel coarsening contraction (<= 0 uses the
     * hardware default). The contraction merge is order-invariant,
     * so the partition is byte-identical for every worker count; the
     * knob only trades wall clock. Ignored when
     * `compilePathConfig().parallelPartition` is off.
     */
    int numWorkers = 0;
};

/**
 * Multilevel k-way partitioner.
 */
class MultilevelPartitioner
{
  public:
    explicit MultilevelPartitioner(MultilevelConfig config);

    /**
     * Partition the graph into k parts under the balance constraint.
     * Deterministic for a fixed config (seed included).
     */
    Partitioning partition(const Graph &g) const;

    const MultilevelConfig &config() const { return config_; }

  private:
    MultilevelConfig config_;
};

/**
 * One FM-style boundary refinement sweep used both inside the
 * multilevel scheme and exposed for testing.
 *
 * Moves boundary nodes to the neighboring part with the highest
 * positive gain while keeping every part below max_part_weight.
 *
 * @return Total cut-weight improvement achieved by the pass.
 */
long long refineBoundaryPass(const Graph &g, Partitioning &p,
                             long long max_part_weight);

} // namespace dcmbqc

#endif // DCMBQC_PARTITION_MULTILEVEL_HH
