#include "exec/program.hh"

#include "api/request.hh"
#include "common/logging.hh"
#include "mbqc/dependency.hh"
#include "mbqc/pattern_builder.hh"

namespace dcmbqc
{

ExecProgram
ExecProgram::fromCircuit(const Circuit &circuit, std::string label)
{
    ExecProgram program = fromPattern(
        buildPattern(circuit),
        label.empty() ? circuit.name() : std::move(label));
    return program;
}

ExecProgram
ExecProgram::fromPattern(Pattern pattern, std::string label)
{
    ExecProgram program;
    program.label_ = std::move(label);
    program.deps_ = realTimeDependencyGraph(pattern);
    program.graph_ = pattern.graph();
    program.pattern_ = std::move(pattern);
    return program;
}

ExecProgram
ExecProgram::fromGraph(Graph graph, Digraph deps, std::string label)
{
    ExecProgram program;
    program.label_ = std::move(label);
    program.graph_ = std::move(graph);
    program.deps_ = std::move(deps);
    return program;
}

ExecProgram
ExecProgram::fromRequest(const CompileRequest &request)
{
    switch (request.entryPoint()) {
      case CompileRequest::EntryPoint::Circuit:
        return fromCircuit(request.circuit(), request.label());
      case CompileRequest::EntryPoint::Pattern:
        return fromPattern(request.pattern(), request.label());
      case CompileRequest::EntryPoint::Graph:
        return fromGraph(request.graph(), request.deps(),
                         request.label());
    }
    panic("ExecProgram::fromRequest: unknown entry point");
}

ExecProgram &
ExecProgram::withSchedule(DcMbqcResult result)
{
    compiled_ = std::move(result);
    return *this;
}

ExecProgram &
ExecProgram::withBaseline(BaselineResult baseline)
{
    baseline_ = std::move(baseline);
    return *this;
}

const Pattern &
ExecProgram::pattern() const
{
    if (!pattern_)
        panic("ExecProgram::pattern(): program has no pattern");
    return *pattern_;
}

const DcMbqcResult &
ExecProgram::schedule() const
{
    if (!compiled_)
        panic("ExecProgram::schedule(): program has no schedule");
    return *compiled_;
}

const BaselineResult &
ExecProgram::baseline() const
{
    if (!baseline_)
        panic("ExecProgram::baseline(): program has no baseline");
    return *baseline_;
}

Status
ExecProgram::validate() const
{
    if (graph_.numNodes() == 0)
        return Status::invalidArgument(
            "program has no computation nodes");
    if (deps_.numNodes() != graph_.numNodes())
        return Status::invalidArgument(
            "dependency graph covers " +
            std::to_string(deps_.numNodes()) + " nodes, graph has " +
            std::to_string(graph_.numNodes()));
    if (pattern_ && pattern_->numNodes() != graph_.numNodes())
        return Status::invalidArgument(
            "pattern covers " + std::to_string(pattern_->numNodes()) +
            " nodes, graph has " + std::to_string(graph_.numNodes()));
    if (compiled_) {
        const auto &assignment = compiled_->partition.assignment();
        if (static_cast<NodeId>(assignment.size()) != graph_.numNodes())
            return Status::invalidArgument(
                "schedule partition covers " +
                std::to_string(assignment.size()) +
                " nodes, graph has " +
                std::to_string(graph_.numNodes()));
    }
    if (baseline_ &&
        static_cast<NodeId>(baseline_->schedule.nodeLayer.size()) !=
            graph_.numNodes())
        return Status::invalidArgument(
            "baseline schedule covers " +
            std::to_string(baseline_->schedule.nodeLayer.size()) +
            " nodes, graph has " + std::to_string(graph_.numNodes()));
    return Status::okStatus();
}

} // namespace dcmbqc
