#include "exec/options.hh"

#include <sstream>

#include "exec/backend.hh"
#include "noise/model.hh"

namespace dcmbqc
{

Status
ExecOptions::validate() const
{
    std::ostringstream problems;
    int count = 0;
    const auto complain = [&](const std::string &what) {
        if (count++ > 0)
            problems << "; ";
        problems << what;
    };

    if (shots < 1)
        complain("shots must be >= 1 (got " + std::to_string(shots) +
                 ")");
    if (seed < 0)
        complain("seed must be >= 0 (got " + std::to_string(seed) +
                 ")");
    if (numThreads < 0)
        complain("numThreads must be >= 0 (got " +
                 std::to_string(numThreads) + ")");
    if (!findBackend(backend)) {
        std::string known;
        for (const std::string &name : backendNames()) {
            if (!known.empty())
                known += "|";
            known += name;
        }
        complain("unknown backend '" + backend + "' (expected " +
                 known + ")");
    }
    if (lossModel.attenuationDbPerKm < 0.0)
        complain("loss model attenuation must be >= 0 dB/km");
    if (lossModel.cyclePeriodNs <= 0.0)
        complain("loss model cycle period must be positive");
    if (lossModel.speedFraction <= 0.0 ||
        lossModel.speedFraction > 1.0)
        complain("loss model speed fraction must lie in (0, 1]");
    if (noise) {
        const auto model = buildNoiseModel(*noise);
        if (!model.ok())
            complain(model.status().message());
    }

    if (count > 0)
        return Status::invalidConfig(problems.str());
    return Status::okStatus();
}

} // namespace dcmbqc
