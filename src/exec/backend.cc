#include "exec/backend.hh"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "common/thread_pool.hh"
#include "exec/loss_backend.hh"
#include "exec/schedule_backend.hh"
#include "exec/stabilizer_backend.hh"
#include "exec/statevector_backend.hh"

namespace dcmbqc
{

namespace
{

std::mutex &
registryMutex()
{
    static std::mutex mutex;
    return mutex;
}

/** Built-ins registered on first access, in documented order. */
std::vector<std::unique_ptr<ExecutionBackend>> &
registry()
{
    static std::vector<std::unique_ptr<ExecutionBackend>> backends =
        [] {
            std::vector<std::unique_ptr<ExecutionBackend>> list;
            list.push_back(std::make_unique<StatevectorBackend>());
            list.push_back(std::make_unique<StabilizerBackend>());
            list.push_back(std::make_unique<MonteCarloLossBackend>());
            list.push_back(std::make_unique<ScheduleBackend>());
            return list;
        }();
    return backends;
}

} // namespace

const ExecutionBackend *
findBackend(const std::string &name)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    for (const auto &backend : registry())
        if (name == backend->name())
            return backend.get();
    return nullptr;
}

std::vector<std::string>
backendNames()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    std::vector<std::string> names;
    names.reserve(registry().size());
    for (const auto &backend : registry())
        names.emplace_back(backend->name());
    return names;
}

Status
registerBackend(std::unique_ptr<ExecutionBackend> backend)
{
    if (!backend)
        return Status::invalidArgument(
            "registerBackend: null backend");
    std::lock_guard<std::mutex> lock(registryMutex());
    for (const auto &existing : registry())
        if (std::string(existing->name()) == backend->name())
            return Status::failedPrecondition(
                std::string("backend '") + backend->name() +
                "' already registered");
    registry().push_back(std::move(backend));
    return Status::okStatus();
}

std::uint64_t
shotSeed(std::int64_t seed, int shot)
{
    // Golden-ratio stride keeps the per-shot streams far apart in
    // the SplitMix64 expansion the Rng seeds through; statistical
    // independence is what matters here, not cryptography.
    return static_cast<std::uint64_t>(seed) ^
        (0x9e3779b97f4a7c15ull *
         (static_cast<std::uint64_t>(shot) + 1));
}

int
resolveThreads(int num_threads, int shots)
{
    int threads = num_threads > 0 ? num_threads
                                  : ThreadPool::defaultNumThreads();
    return std::max(1, std::min(threads, shots));
}

void
forEachShot(int shots, int threads,
            const std::function<void(int)> &body)
{
    if (threads <= 1) {
        for (int shot = 0; shot < shots; ++shot)
            body(shot);
        return;
    }
    // Contiguous chunks: one pool job per worker keeps queue
    // overhead negligible even for very cheap shots.
    ThreadPool pool(threads);
    const int chunk = (shots + threads - 1) / threads;
    for (int begin = 0; begin < shots; begin += chunk) {
        const int end = std::min(shots, begin + chunk);
        pool.submit([&body, begin, end] {
            for (int shot = begin; shot < end; ++shot)
                body(shot);
        });
    }
    pool.wait();
}

Expected<ExecResult>
executeProgram(const ExecProgram &program, const ExecOptions &options)
{
    Status status = options.validate();
    if (!status.ok())
        return status;
    status = program.validate();
    if (!status.ok())
        return status;

    const ExecutionBackend *backend = findBackend(options.backend);
    // validate() already vetted the name; a vanished backend would
    // be a registry bug.
    if (!backend)
        return Status::internal("backend '" + options.backend +
                                "' disappeared from the registry");

    const BackendCapabilities caps = backend->capabilities();
    if (caps.runsPattern && !program.hasPattern())
        return Status::failedPrecondition(
            "backend '" + options.backend +
            "' executes measurement patterns, but the program has "
            "none (graph-entry programs carry no angles)");
    if (caps.runsSchedule && !program.hasSchedule() &&
        !program.hasBaseline())
        return Status::failedPrecondition(
            "backend '" + options.backend +
            "' executes compiled schedules; compile first (or use "
            "compileAndExecute, or attach a baseline)");
    if (caps.maxWires > 0 && program.hasPattern() &&
        program.pattern().numWires() > caps.maxWires)
        return Status::failedPrecondition(
            "backend '" + options.backend + "' is bounded to " +
            std::to_string(caps.maxWires) + " output wires, pattern " +
            "has " + std::to_string(program.pattern().numWires()));

    const auto start = std::chrono::steady_clock::now();
    Expected<ExecResult> result = backend->run(program, options);
    if (!result.ok())
        return result;

    result->backend = backend->name();
    result->label = program.label();
    result->shots = options.shots;
    result->seed = options.seed;
    result->wallMillis =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    return result;
}

} // namespace dcmbqc
