#include "exec/loss_backend.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>

#include "common/rng.hh"
#include "noise/analysis.hh"
#include "noise/model.hh"
#include "sim/loss_analysis.hh"

namespace dcmbqc
{

Expected<std::vector<TimeSlot>>
schedulePhotonTimes(const DcMbqcResult &result, NodeId num_nodes)
{
    const auto &assignment = result.partition.assignment();
    if (static_cast<NodeId>(assignment.size()) != num_nodes)
        return Status::invalidArgument(
            "schedule partition covers " +
            std::to_string(assignment.size()) + " photons, program " +
            "has " + std::to_string(num_nodes));
    const int parts = result.partition.numParts();
    if (static_cast<int>(result.localSchedules.size()) != parts)
        return Status::invalidArgument(
            "schedule has " +
            std::to_string(result.localSchedules.size()) +
            " local schedules for " + std::to_string(parts) +
            " parts");

    // Main tasks are enumerated QPU-major, layer-minor — the same
    // order the LSP builder assigns task ids in, which is what
    // Schedule::mainStart is indexed by.
    const auto members = result.partition.partMembers();
    std::size_t total_layers = 0;
    for (const auto &local : result.localSchedules)
        total_layers += local.layers.size();
    if (result.schedule.mainStart.size() != total_layers)
        return Status::invalidArgument(
            "schedule holds " +
            std::to_string(result.schedule.mainStart.size()) +
            " main-task starts for " + std::to_string(total_layers) +
            " execution layers");

    std::vector<TimeSlot> times(num_nodes, 0);
    std::size_t task_base = 0;
    for (int qpu = 0; qpu < parts; ++qpu) {
        const auto &local = result.localSchedules[qpu];
        if (members[qpu].size() != local.nodeLayer.size())
            return Status::invalidArgument(
                "QPU " + std::to_string(qpu) + " hosts " +
                std::to_string(members[qpu].size()) +
                " photons but its local schedule maps " +
                std::to_string(local.nodeLayer.size()));
        for (std::size_t i = 0; i < members[qpu].size(); ++i) {
            const LayerId layer = local.nodeLayer[i];
            if (layer < 0 ||
                layer >= static_cast<LayerId>(local.layers.size()))
                return Status::invalidArgument(
                    "QPU " + std::to_string(qpu) + " photon " +
                    std::to_string(i) + " sits on layer " +
                    std::to_string(layer) + " of " +
                    std::to_string(local.layers.size()));
            times[members[qpu][i]] =
                result.schedule.mainStart[task_base + layer] *
                local.grid.plRatio;
        }
        task_base += local.layers.size();
    }
    return times;
}

Graph
intraQpuEdges(const Graph &g, const DcMbqcResult &result)
{
    Graph local(g.numNodes());
    for (const auto &e : g.edges())
        if (result.partition.part(e.u) == result.partition.part(e.v))
            local.addEdge(e.u, e.v, e.weight);
    return local;
}

BackendCapabilities
MonteCarloLossBackend::capabilities() const
{
    BackendCapabilities caps;
    caps.runsSchedule = true;
    return caps;
}

namespace
{

/** Aggregate per-shot lost-photon counts into the result. */
void
finalizeLossResult(ExecResult &result, int shots,
                   const std::vector<std::int32_t> &lost,
                   double success_probability)
{
    for (const std::int32_t lost_here : lost) {
        if (lost_here > 0) {
            ++result.lostShots;
            result.lostPhotons += lost_here;
        }
    }
    result.completedShots = shots - result.lostShots;
    result.counts["success"] = result.completedShots;
    result.counts["loss"] = result.lostShots;
    result.probabilities["success"] = success_probability;
    result.probabilities["loss"] = 1.0 - success_probability;
}

} // namespace

Expected<ExecResult>
MonteCarloLossBackend::run(const ExecProgram &program,
                           const ExecOptions &options) const
{
    const NodeId n = program.graph().numNodes();

    // Derive per-photon generation times and the QPU assignment from
    // whichever compiled form the program carries. A baseline is a
    // single QPU: no assignment, every fusion intra.
    std::vector<TimeSlot> times;
    const std::vector<int> *assignment = nullptr;
    if (program.hasSchedule()) {
        auto scheduled = schedulePhotonTimes(program.schedule(), n);
        if (!scheduled.ok())
            return scheduled.status();
        times = std::move(scheduled.value());
        assignment = &program.schedule().partition.assignment();
    } else if (program.hasBaseline()) {
        const LocalSchedule &local = program.baseline().schedule;
        times.resize(n);
        for (NodeId u = 0; u < n; ++u)
            times[u] = local.nodePhysicalTime(u);
    } else {
        return Status::failedPrecondition(
            "mc-loss requires a compiled schedule or a baseline");
    }

    std::optional<NoiseModel> model;
    if (options.noise) {
        auto built = buildNoiseModel(*options.noise);
        if (!built.ok())
            return built.status();
        if (!built->vacuous())
            model = std::move(built.value());
    }

    ExecResult result;
    result.threads = resolveThreads(options.numThreads, options.shots);

    if (!model) {
        // Legacy storage-only path, bit-identical to the pre-noise
        // backend: intra-QPU edges only (connector storage is
        // tau_remote, bounded by the scheduler), one bernoulli per
        // photon in node order.
        const Graph local = program.hasSchedule()
            ? intraQpuEdges(program.graph(), program.schedule())
            : program.graph();
        const LossAnalysis analysis = analyzeLoss(
            local, program.deps(), times, options.lossModel);
        result.analyticSuccessProbability =
            analysis.successProbability;
        result.maxStorageCycles = analysis.maxStorageCycles;
        result.meanStorageCycles = analysis.meanStorageCycles;

        std::vector<double> loss_prob(analysis.storageCycles.size());
        for (std::size_t u = 0; u < loss_prob.size(); ++u)
            loss_prob[u] = options.lossModel.lossProbability(
                analysis.storageCycles[u]);

        std::vector<std::int32_t> lost(options.shots, 0);
        forEachShot(options.shots, result.threads, [&](int shot) {
            Rng rng(shotSeed(options.seed, shot));
            std::int32_t lost_here = 0;
            for (const double p : loss_prob)
                if (rng.bernoulli(p))
                    ++lost_here;
            lost[shot] = lost_here;
        });
        finalizeLossResult(result, options.shots, lost,
                           analysis.successProbability);
        return result;
    }

    // Mechanism path: every registered mechanism samples over the
    // program's exposure. Cut edges charge connector insertion loss
    // and tau_remote storage to both endpoints — the storage the
    // legacy path deliberately ignored — plus per-fusion failure.
    const NoiseExposure exposure = buildExposure(
        program.graph(), program.deps(), times, assignment);
    const NoiseAnalysis analysis = analyzeNoise(exposure, *model);
    result.analyticSuccessProbability = analysis.successProbability;
    result.maxStorageCycles = analysis.maxStorageCycles;
    result.meanStorageCycles = analysis.meanStorageCycles;
    result.notes.push_back("noise model: " + model->describe());

    // Independent per-site loss excludes correlated mechanisms:
    // those sample through their own hook below, and their analytic
    // factor must not be drawn twice.
    std::vector<double> site_loss(exposure.sites.size());
    for (std::size_t u = 0; u < exposure.sites.size(); ++u) {
        double survival = 1.0;
        for (const auto &mechanism : model->mechanisms())
            if (!mechanism->correlated())
                survival *= mechanism->siteSurvival(exposure.sites[u]);
        site_loss[u] = std::min(1.0, std::max(0.0, 1.0 - survival));
    }
    const bool has_correlated = model->hasCorrelated();

    std::vector<std::int32_t> lost(options.shots, 0);
    forEachShot(options.shots, result.threads, [&](int shot) {
        Rng rng(shotSeed(options.seed, shot));
        std::int32_t lost_here = 0;
        if (!has_correlated) {
            for (const double p : site_loss)
                if (rng.bernoulli(p))
                    ++lost_here;
        } else {
            // A burst can hit a photon the independent draws already
            // lost; the mask keeps the count honest. One buffer per
            // worker thread — assign() recycles its capacity, so the
            // shot loop allocates nothing after warm-up.
            thread_local std::vector<char> mask;
            mask.assign(site_loss.size(), 0);
            for (std::size_t u = 0; u < site_loss.size(); ++u)
                if (rng.bernoulli(site_loss[u]))
                    mask[u] = 1;
            model->sampleCorrelated(exposure.sites, rng, mask);
            lost_here = static_cast<std::int32_t>(
                std::count(mask.begin(), mask.end(), char(1)));
        }
        for (const double p : analysis.edgeLoss)
            if (rng.bernoulli(p))
                ++lost_here;
        lost[shot] = lost_here;
    });
    finalizeLossResult(result, options.shots, lost,
                       analysis.successProbability);
    return result;
}

} // namespace dcmbqc
