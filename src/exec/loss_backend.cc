#include "exec/loss_backend.hh"

#include <numeric>

#include "common/rng.hh"
#include "sim/loss_analysis.hh"

namespace dcmbqc
{

Expected<std::vector<TimeSlot>>
schedulePhotonTimes(const DcMbqcResult &result, NodeId num_nodes)
{
    const auto &assignment = result.partition.assignment();
    if (static_cast<NodeId>(assignment.size()) != num_nodes)
        return Status::invalidArgument(
            "schedule partition covers " +
            std::to_string(assignment.size()) + " photons, program " +
            "has " + std::to_string(num_nodes));
    const int parts = result.partition.numParts();
    if (static_cast<int>(result.localSchedules.size()) != parts)
        return Status::invalidArgument(
            "schedule has " +
            std::to_string(result.localSchedules.size()) +
            " local schedules for " + std::to_string(parts) +
            " parts");

    // Main tasks are enumerated QPU-major, layer-minor — the same
    // order the LSP builder assigns task ids in, which is what
    // Schedule::mainStart is indexed by.
    const auto members = result.partition.partMembers();
    std::size_t total_layers = 0;
    for (const auto &local : result.localSchedules)
        total_layers += local.layers.size();
    if (result.schedule.mainStart.size() != total_layers)
        return Status::invalidArgument(
            "schedule holds " +
            std::to_string(result.schedule.mainStart.size()) +
            " main-task starts for " + std::to_string(total_layers) +
            " execution layers");

    std::vector<TimeSlot> times(num_nodes, 0);
    std::size_t task_base = 0;
    for (int qpu = 0; qpu < parts; ++qpu) {
        const auto &local = result.localSchedules[qpu];
        if (members[qpu].size() != local.nodeLayer.size())
            return Status::invalidArgument(
                "QPU " + std::to_string(qpu) + " hosts " +
                std::to_string(members[qpu].size()) +
                " photons but its local schedule maps " +
                std::to_string(local.nodeLayer.size()));
        for (std::size_t i = 0; i < members[qpu].size(); ++i) {
            const LayerId layer = local.nodeLayer[i];
            if (layer < 0 ||
                layer >= static_cast<LayerId>(local.layers.size()))
                return Status::invalidArgument(
                    "QPU " + std::to_string(qpu) + " photon " +
                    std::to_string(i) + " sits on layer " +
                    std::to_string(layer) + " of " +
                    std::to_string(local.layers.size()));
            times[members[qpu][i]] =
                result.schedule.mainStart[task_base + layer] *
                local.grid.plRatio;
        }
        task_base += local.layers.size();
    }
    return times;
}

Graph
intraQpuEdges(const Graph &g, const DcMbqcResult &result)
{
    Graph local(g.numNodes());
    for (const auto &e : g.edges())
        if (result.partition.part(e.u) == result.partition.part(e.v))
            local.addEdge(e.u, e.v, e.weight);
    return local;
}

BackendCapabilities
MonteCarloLossBackend::capabilities() const
{
    BackendCapabilities caps;
    caps.runsSchedule = true;
    return caps;
}

Expected<ExecResult>
MonteCarloLossBackend::run(const ExecProgram &program,
                           const ExecOptions &options) const
{
    const DcMbqcResult &compiled = program.schedule();
    auto times =
        schedulePhotonTimes(compiled, program.graph().numNodes());
    if (!times.ok())
        return times.status();

    // Intra-QPU edges only: connector storage is tau_remote, already
    // bounded by the scheduler, matching the Algorithm 1 accounting
    // the loss-analysis tests pin down.
    const Graph local = intraQpuEdges(program.graph(), compiled);
    const LossAnalysis analysis =
        analyzeLoss(local, program.deps(), *times, options.lossModel);

    ExecResult result;
    result.threads = resolveThreads(options.numThreads, options.shots);
    result.analyticSuccessProbability = analysis.successProbability;
    result.maxStorageCycles = analysis.maxStorageCycles;
    result.meanStorageCycles = analysis.meanStorageCycles;

    // Loss probability per photon, precomputed once outside the
    // sampling loop.
    std::vector<double> loss_prob(analysis.storageCycles.size());
    for (std::size_t u = 0; u < loss_prob.size(); ++u)
        loss_prob[u] = options.lossModel.lossProbability(
            analysis.storageCycles[u]);

    std::vector<std::int32_t> lost(options.shots, 0);
    forEachShot(options.shots, result.threads, [&](int shot) {
        Rng rng(shotSeed(options.seed, shot));
        std::int32_t lost_here = 0;
        for (const double p : loss_prob)
            if (rng.bernoulli(p))
                ++lost_here;
        lost[shot] = lost_here;
    });

    for (const std::int32_t lost_here : lost) {
        if (lost_here > 0) {
            ++result.lostShots;
            result.lostPhotons += lost_here;
        }
    }
    result.completedShots = options.shots - result.lostShots;
    result.counts["success"] = result.completedShots;
    result.counts["loss"] = result.lostShots;
    result.probabilities["success"] = analysis.successProbability;
    result.probabilities["loss"] =
        1.0 - analysis.successProbability;
    return result;
}

} // namespace dcmbqc
