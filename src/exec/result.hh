/**
 * @file
 * `ExecResult`: everything one execution of a program on one backend
 * produced — the outcome histogram, exact per-outcome probabilities
 * when the backend can derive them, loss-sampling statistics, and
 * wall-clock / threading metadata. One struct serves all three
 * backends; fields a backend does not populate keep their documented
 * "absent" defaults so the binary codec and JSON writer stay
 * uniform.
 */

#ifndef DCMBQC_EXEC_RESULT_HH
#define DCMBQC_EXEC_RESULT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dcmbqc
{

/** Result of running a program on one execution backend. */
struct ExecResult
{
    /** Registry name of the backend that produced this result. */
    std::string backend;

    /** Label copied from the executed program. */
    std::string label;

    /** Requested shot count. */
    int shots = 0;

    /**
     * Shots that produced an outcome. Equal to `shots` for the
     * simulator backends; for the Monte-Carlo loss backend, the
     * shots in which every photon survived its delay-line storage.
     */
    int completedShots = 0;

    /** Output wires sampled per shot (0 for the loss backend). */
    int numWires = 0;

    /** Master seed the result was produced from (echoed back). */
    std::int64_t seed = 0;

    /** Worker threads used for shot sampling. */
    int threads = 1;

    /** Wall-clock time of the whole run. */
    double wallMillis = 0.0;

    /**
     * Outcome histogram: bitstring -> occurrences. Character w of
     * the key is the Z outcome of output wire w ('0' or '1'). The
     * loss backend uses the synthetic keys "success" / "loss".
     */
    std::map<std::string, std::int64_t> counts;

    /**
     * Exact probability of each *observed* outcome, for backends
     * that can derive it (statevector: |amplitude|^2 of the
     * corrected output state; stabilizer: 2^-r with r the number of
     * non-deterministic output measurements). Empty when unknown.
     */
    std::map<std::string, double> probabilities;

    // --- Monte-Carlo loss statistics (mc-loss backend only) -----------

    /** Shots in which at least one photon was lost. */
    int lostShots = 0;

    /** Total photon-loss events across all shots. */
    std::int64_t lostPhotons = 0;

    /**
     * Analytic probability that no photon is lost (product of
     * per-photon survival); negative when not computed.
     */
    double analyticSuccessProbability = -1.0;

    /** Max / mean per-photon storage charged by the schedule. */
    int maxStorageCycles = 0;
    double meanStorageCycles = 0.0;

    /** Non-fatal notes (e.g. why exact probabilities are absent). */
    std::vector<std::string> notes;

    /** completedShots / shots (0 when no shot ran). */
    double
    survivalRate() const
    {
        return shots > 0
            ? static_cast<double>(completedShots) / shots : 0.0;
    }
};

} // namespace dcmbqc

#endif // DCMBQC_EXEC_RESULT_HH
