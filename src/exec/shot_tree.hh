/**
 * @file
 * Fork-on-first-measurement shot prefix tree. Sampling a shot walks
 * a binary tree whose nodes are the random decisions of the pattern
 * replay; the deterministic evolution between decisions (graph-state
 * prep, entangling, conjugation, deterministic measurements) is
 * computed once per distinct outcome prefix and shared by every shot
 * that follows the same prefix, instead of once per shot.
 *
 * Determinism contract: a shot's outcome depends only on its own RNG
 * stream and the (deterministic) stepper — node caching changes
 * which work is reused, never a value — so results are bit-identical
 * to the naive per-shot replay (`runShotNaive`) for any worker
 * count, which tests/test_sim_kernels.cc pins.
 *
 * Concurrency: a node is expanded exactly once under its mutex and
 * then *settled* (atomic release). A settled node's payload
 * (terminal flag, result, p0, cached state) is immutable, so the
 * steady-state walk is lock-free: shots only touch a mutex on first
 * expansion and first child creation. The walk keeps its working
 * state in a thread-local scratch buffer, so steady-state sampling
 * performs no allocation beyond what the stepper itself does.
 *
 * Stepper concept (all methods const; State is copyable):
 *   State  root()                        — initial replay state
 *   bool   advance(State &)              — run deterministic work up
 *          to the next random decision; true when the shot is done
 *   double prob0(const State &)          — P(outcome 0) at the
 *          pending decision, exactly as the naive replay computes it
 *   int    draw(Rng &, double p0)        — consume the shot RNG the
 *          same way the naive replay does; returns the outcome
 *   void   applyOutcome(State &, int)    — take the chosen branch
 *   Result result(const State &)         — final per-shot payload
 *   size_t stateBytes(const State &)     — cache-budget estimate
 */

#ifndef DCMBQC_EXEC_SHOT_TREE_HH
#define DCMBQC_EXEC_SHOT_TREE_HH

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "common/rng.hh"

namespace dcmbqc
{

/**
 * Default cap on cached prefix states. Nodes past the budget stay
 * transient: walks recompute their segment from the nearest cached
 * ancestor (correctness is unaffected, only reuse).
 */
constexpr std::size_t kShotTreeBudgetBytes = std::size_t(64) << 20;

template <class Stepper>
class ShotTree
{
  public:
    using State = typename Stepper::State;
    using Result = typename Stepper::Result;

    explicit ShotTree(Stepper stepper,
                      std::size_t budget_bytes = kShotTreeBudgetBytes)
        : stepper_(std::move(stepper)), budget_(budget_bytes)
    {
    }

    /** Sample one shot; safe to call from many threads at once. */
    Result run(Rng &rng)
    {
        // Reused across shots on this thread: copy-assignment into
        // an existing State recycles its vector capacities, so the
        // steady-state walk is assignment + applyOutcome per
        // decision, no construction.
        thread_local std::optional<State> scratch;
        Node *node = &root_;
        // Invariant on arrival at `node` when `have_arrival`:
        // *scratch is the parent's decision state with the chosen
        // outcome applied but not yet advanced (for the root: the
        // stepper's initial state). The fully-cached fast path never
        // materializes arrival states at all — it jumps straight
        // from cached advanced state to cached advanced state.
        bool have_arrival = false;
        for (;;) {
            if (node->settled.load(std::memory_order_acquire)) {
                // Settled payload is immutable: read without a lock.
                if (node->terminal)
                    return node->result;
                if (node->state) {
                    assign(scratch, *node->state);
                    have_arrival = true;
                } else {
                    // Past the cache budget: redo this segment from
                    // the arrival state.
                    materializeArrival(scratch, have_arrival);
                    stepper_.advance(*scratch);
                }
            } else {
                materializeArrival(scratch, have_arrival);
                std::lock_guard<std::mutex> lock(node->mu);
                if (node->settled.load(std::memory_order_relaxed)) {
                    // Another worker settled it while we waited.
                    if (node->terminal)
                        return node->result;
                    if (node->state)
                        assign(scratch, *node->state);
                    else
                        stepper_.advance(*scratch);
                } else {
                    const bool done = stepper_.advance(*scratch);
                    node->terminal = done;
                    if (done) {
                        node->result = stepper_.result(*scratch);
                    } else {
                        node->p0 = stepper_.prob0(*scratch);
                        const std::size_t bytes =
                            stepper_.stateBytes(*scratch);
                        if (cachedBytes_.load(
                                std::memory_order_relaxed) +
                                bytes <=
                            budget_) {
                            node->state.emplace(*scratch);
                            cachedBytes_.fetch_add(
                                bytes, std::memory_order_relaxed);
                        }
                    }
                    node->settled.store(true,
                                        std::memory_order_release);
                    if (done)
                        return node->result;
                }
            }
            const int outcome = stepper_.draw(rng, node->p0);
            Node *next =
                node->child[outcome].load(std::memory_order_acquire);
            if (!next) {
                std::lock_guard<std::mutex> lock(node->mu);
                next = node->child[outcome].load(
                    std::memory_order_relaxed);
                if (!next) {
                    next = new Node();
                    node->child[outcome].store(
                        next, std::memory_order_release);
                }
            }
            stepper_.applyOutcome(*scratch, outcome);
            node = next;
        }
    }

  private:
    struct Node
    {
        std::mutex mu;
        /** Release-set once the payload below is final. */
        std::atomic<bool> settled{false};
        bool terminal = false;
        double p0 = 0.0;
        std::optional<State> state;
        Result result{};
        std::atomic<Node *> child[2]{{nullptr}, {nullptr}};

        ~Node()
        {
            delete child[0].load(std::memory_order_relaxed);
            delete child[1].load(std::memory_order_relaxed);
        }
    };

    /** Copy `src` into the scratch slot, recycling its buffers. */
    static void
    assign(std::optional<State> &scratch, const State &src)
    {
        if (scratch)
            *scratch = src;
        else
            scratch.emplace(src);
    }

    /** Ensure *scratch holds the arrival state for the current node. */
    void
    materializeArrival(std::optional<State> &scratch,
                       bool &have_arrival) const
    {
        if (!have_arrival) {
            assign(scratch, stepper_.root());
            have_arrival = true;
        }
    }

    const Stepper stepper_;
    const std::size_t budget_;
    std::atomic<std::size_t> cachedBytes_{0};
    Node root_;
};

/**
 * The pre-tree behavior: replay the full shot start to finish with
 * no sharing. Consumes the RNG identically to ShotTree::run — this
 * IS the naive backend shot loop, expressed through the stepper.
 */
template <class Stepper>
typename Stepper::Result
runShotNaive(const Stepper &stepper, Rng &rng)
{
    typename Stepper::State state = stepper.root();
    while (!stepper.advance(state)) {
        const double p0 = stepper.prob0(state);
        stepper.applyOutcome(state, stepper.draw(rng, p0));
    }
    return stepper.result(state);
}

} // namespace dcmbqc

#endif // DCMBQC_EXEC_SHOT_TREE_HH
