/**
 * @file
 * Stabilizer-tableau execution backend: runs Clifford measurement
 * patterns (every adapted angle a multiple of pi/2) on the
 * Aaronson-Gottesman simulator, scaling to thousands of photons
 * where the dense backend stops at ~20 wires. An XY-plane
 * measurement at angle k*pi/2 is performed by conjugating with the
 * phase gate P(-k*pi/2) in {I, Sdg, Z, S} and measuring X. Each
 * sampled bitstring carries its exact probability 2^-r (r = number
 * of non-deterministic output measurements), which the differential
 * tests check against the statevector backend's amplitudes.
 */

#ifndef DCMBQC_EXEC_STABILIZER_BACKEND_HH
#define DCMBQC_EXEC_STABILIZER_BACKEND_HH

#include "exec/backend.hh"

namespace dcmbqc
{

/** Clifford-pattern backend over sim/stabilizer. */
class StabilizerBackend : public ExecutionBackend
{
  public:
    const char *name() const override { return "stabilizer"; }

    BackendCapabilities capabilities() const override;

    Expected<ExecResult> run(const ExecProgram &program,
                             const ExecOptions &options) const override;
};

} // namespace dcmbqc

#endif // DCMBQC_EXEC_STABILIZER_BACKEND_HH
