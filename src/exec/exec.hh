/**
 * @file
 * Umbrella header of the execution subsystem. Typical use:
 *
 *   auto result = executeProgram(
 *       ExecProgram::fromCircuit(makeQft(6)),
 *       ExecOptions{});                      // statevector, 256 shots
 *   if (!result.ok())
 *       handle(result.status());
 *   use(result->counts);
 *
 * or, end to end through the driver:
 *
 *   ExecOptions exec;
 *   exec.backend = "mc-loss";
 *   auto report = driver.compileAndExecute(request, exec);
 */

#ifndef DCMBQC_EXEC_EXEC_HH
#define DCMBQC_EXEC_EXEC_HH

#include "exec/backend.hh"
#include "exec/loss_backend.hh"
#include "exec/options.hh"
#include "exec/program.hh"
#include "exec/result.hh"
#include "exec/stabilizer_backend.hh"
#include "exec/statevector_backend.hh"

#endif // DCMBQC_EXEC_EXEC_HH
