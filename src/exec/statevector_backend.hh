/**
 * @file
 * Dense state-vector execution backend: runs the measurement
 * pattern shot by shot with adaptive measurements (sim/pattern_runner),
 * samples the output wires in the Z basis, and — because byproduct
 * correction makes the corrected output state deterministic — also
 * reports the exact output distribution. Shots are fanned across the
 * thread pool; per-shot seeding keeps results bit-identical for any
 * worker count.
 */

#ifndef DCMBQC_EXEC_STATEVECTOR_BACKEND_HH
#define DCMBQC_EXEC_STATEVECTOR_BACKEND_HH

#include "exec/backend.hh"

namespace dcmbqc
{

/** Exact simulator backend over sim/statevector. */
class StatevectorBackend : public ExecutionBackend
{
  public:
    const char *name() const override { return "statevector"; }

    BackendCapabilities capabilities() const override;

    Expected<ExecResult> run(const ExecProgram &program,
                             const ExecOptions &options) const override;
};

} // namespace dcmbqc

#endif // DCMBQC_EXEC_STATEVECTOR_BACKEND_HH
