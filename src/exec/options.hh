/**
 * @file
 * Execution-side configuration of the `ExecutionBackend` subsystem.
 * Mirrors the compile-side `CompileOptions` contract: every field a
 * caller can get wrong is checked up front by `validate()` and
 * reported through the Status channel (zero shots, negative seeds,
 * negative thread counts, unknown backend names) instead of being
 * silently defaulted or tripping an assert inside a backend.
 */

#ifndef DCMBQC_EXEC_OPTIONS_HH
#define DCMBQC_EXEC_OPTIONS_HH

#include <cstdint>
#include <optional>
#include <string>

#include "api/status.hh"
#include "noise/config.hh"
#include "photonic/loss_model.hh"

namespace dcmbqc
{

/** How one execution request should be run. */
struct ExecOptions
{
    /**
     * Registry name of the backend to run on: "statevector",
     * "stabilizer", or "mc-loss" (see exec/backend.hh). validate()
     * rejects names absent from the registry.
     */
    std::string backend = "statevector";

    /** Number of sampling shots (must be >= 1). */
    int shots = 256;

    /**
     * Deterministic master seed. Every shot derives an independent
     * stream from (seed, shot index), so results are bit-identical
     * for equal seeds regardless of the worker count. Kept signed so
     * a negative value (e.g. a failed upstream parse) is *rejected*
     * rather than silently wrapped into a huge unsigned seed.
     */
    std::int64_t seed = 1;

    /**
     * Worker threads for parallel shot sampling; 0 picks the
     * hardware concurrency, 1 runs inline. Negative is rejected.
     */
    int numThreads = 0;

    /**
     * Undo the residual MBQC byproducts X^{sx} Z^{sz} on the output
     * wires before sampling, so the sampled distribution equals the
     * ideal circuit output. When false, raw (uncorrected) outcomes
     * are sampled and exact probabilities are unavailable.
     */
    bool applyByproducts = true;

    /** Delay-line loss model used by the Monte-Carlo loss backend. */
    LossModel lossModel;

    /**
     * Pluggable noise configuration (src/noise/). When set and
     * non-vacuous, the mc-loss backend samples every configured
     * mechanism instead of intra-QPU storage loss only, and the
     * simulator backends inject the loss / outcome-flip channels.
     * When absent (or vacuous) every backend is bit-identical to a
     * run without this field. validate() resolves the config against
     * the mechanism registry and rejects unknown mechanisms or
     * out-of-domain parameters.
     */
    std::optional<NoiseConfig> noise;

    /** Check every field against its documented domain. */
    Status validate() const;
};

} // namespace dcmbqc

#endif // DCMBQC_EXEC_OPTIONS_HH
