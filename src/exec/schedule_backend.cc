#include "exec/schedule_backend.hh"

#include <algorithm>
#include <cmath>
#include <optional>
#include <queue>
#include <utility>

#include "common/rng.hh"
#include "exec/loss_backend.hh"
#include "exec/noise_channel.hh"
#include "exec/stabilizer_replay.hh"
#include "mbqc/dependency.hh"
#include "noise/analysis.hh"
#include "noise/model.hh"
#include "sim/kernel_config.hh"
#include "sim/stabilizer.hh"
#include "sim/stabilizer_reference.hh"

namespace dcmbqc
{

namespace
{

constexpr double pi = 3.14159265358979323846;

/** Angle tolerance for the Clifford (multiple of pi/2) test. */
constexpr double kAngleEpsilon = 1e-9;

/**
 * Quarter-turn index k with theta ~= k*pi/2 (k in [0,4)), or -1 when
 * theta is not a multiple of pi/2 within tolerance.
 */
int
quarterTurns(double theta)
{
    const double turns = theta / (pi / 2.0);
    const long long k = std::llround(turns);
    if (std::fabs(turns - static_cast<double>(k)) > kAngleEpsilon)
        return -1;
    return static_cast<int>(((k % 4) + 4) % 4);
}

/** One sampled shot: output bits plus their exact probability. */
struct ScheduleShot
{
    std::string bits;

    /** Non-deterministic output measurements in this shot. */
    int randomOutputs = 0;

    /** Photons lost to the noise model (> 0 voids the shot). */
    int lostPhotons = 0;
};

} // namespace

Expected<std::vector<NodeId>>
scheduleMeasurementOrder(const Pattern &pattern,
                         const std::vector<TimeSlot> &times,
                         std::vector<TimeSlot> *wait)
{
    const NodeId n = pattern.numNodes();
    // The stabilizer replay applies sz offsets at measurement time
    // rather than signal-shifting them away, so a valid order must
    // respect the *full* correction structure — X and Z arcs both —
    // not just the shifted real-time graph (which is empty for the
    // Clifford patterns this backend accepts).
    const DependencyGraphs deps = buildDependencyGraphs(pattern);

    std::vector<int> indeg(n, 0);
    for (NodeId p = 0; p < n; ++p) {
        for (const NodeId v : deps.xDeps.successors(p))
            ++indeg[v];
        for (const NodeId v : deps.zDeps.successors(p))
            ++indeg[v];
    }

    // Min-heap on (generation time, node id): the earliest generated
    // correction-ready photon measures next; the id tie-break keeps
    // the interleaving deterministic across platforms.
    using Ready = std::pair<TimeSlot, NodeId>;
    std::priority_queue<Ready, std::vector<Ready>,
                        std::greater<Ready>>
        ready;
    NodeId measured_total = 0;
    for (NodeId u = 0; u < n; ++u) {
        if (pattern.isOutput(u))
            continue;
        ++measured_total;
        if (indeg[u] == 0)
            ready.emplace(times[u], u);
    }

    if (wait)
        wait->assign(n, 0);
    // measure[v]: the cycle v's measurement actually happens, i.e.
    // generation delayed until every correction source has fired.
    std::vector<TimeSlot> measure(n, 0);
    std::vector<NodeId> order;
    order.reserve(measured_total);
    while (!ready.empty()) {
        const NodeId m = ready.top().second;
        ready.pop();
        measure[m] = std::max(measure[m], times[m]);
        if (wait)
            (*wait)[m] = measure[m] - times[m];
        order.push_back(m);
        for (const Digraph *g : {&deps.xDeps, &deps.zDeps}) {
            for (const NodeId v : g->successors(m)) {
                measure[v] = std::max(measure[v], measure[m]);
                if (--indeg[v] == 0)
                    ready.emplace(times[v], v);
            }
        }
    }
    if (static_cast<NodeId>(order.size()) != measured_total)
        return Status::internal(
            "correction-dependency cycle: only " +
            std::to_string(order.size()) + " of " +
            std::to_string(measured_total) +
            " measurements orderable — the pattern flow is corrupt");
    return order;
}

BackendCapabilities
ScheduleBackend::capabilities() const
{
    BackendCapabilities caps;
    caps.runsPattern = true;
    caps.runsSchedule = true;
    caps.cliffordOnly = true;
    caps.exactProbabilities = true;
    return caps;
}

Expected<ExecResult>
ScheduleBackend::run(const ExecProgram &program,
                     const ExecOptions &options) const
{
    // The dispatcher admits schedule-capable backends for baseline
    // programs too (mc-loss accepts either form); this backend
    // replays the *distributed* timeline and has nothing to
    // interleave for a monolithic baseline.
    if (!program.hasSchedule())
        return Status::failedPrecondition(
            "schedule backend executes compiled distributed "
            "schedules; this program carries " +
            std::string(program.hasBaseline()
                            ? "only a single-QPU baseline"
                            : "no schedule") +
            " — compile distributed first (dcmbqc compile --qpus K) "
            "or pick a pattern-level backend");

    const Pattern &pattern = program.pattern();
    const NodeId n = pattern.numNodes();
    if (program.graph().numNodes() != n)
        return Status::invalidArgument(
            "pattern has " + std::to_string(n) +
            " nodes but the program graph has " +
            std::to_string(program.graph().numNodes()));

    std::vector<int> base_turns(n, 0);
    for (NodeId u = 0; u < n; ++u) {
        if (pattern.isOutput(u))
            continue;
        const int k = quarterTurns(pattern.angle(u));
        if (k < 0)
            return Status::failedPrecondition(
                "schedule backend requires a Clifford pattern: "
                "node " + std::to_string(u) + " measures at angle " +
                std::to_string(pattern.angle(u)) +
                ", not a multiple of pi/2");
        base_turns[u] = k;
    }

    // Per-photon generation cycles from the per-QPU timelines; any
    // payload inconsistency (partition/layer/task-count mismatch)
    // is a scheduler or artifact bug and comes back as Status.
    auto times = schedulePhotonTimes(program.schedule(), n);
    if (!times.ok())
        return times.status();
    std::vector<TimeSlot> wait;
    auto order = scheduleMeasurementOrder(pattern, *times, &wait);
    if (!order.ok())
        return order.status();

    ExecResult result;
    result.numWires = pattern.numWires();
    result.threads = resolveThreads(options.numThreads, options.shots);
    TimeSlot max_wait = 0;
    double total_wait = 0.0;
    for (const NodeId m : *order) {
        max_wait = std::max(max_wait, wait[m]);
        total_wait += static_cast<double>(wait[m]);
    }
    result.maxStorageCycles = static_cast<int>(max_wait);
    result.meanStorageCycles = order->empty()
        ? 0.0
        : total_wait / static_cast<double>(order->size());

    // Noise is charged against the *schedule's* exposure (delay-line
    // storage from the generation times, connector loss on cut
    // edges), not the schedule-free pattern exposure the simulator
    // backends use — so the survival statistics line up with the
    // mc-loss backend and the analytic model on the same schedule.
    std::optional<NoiseModel> model;
    std::vector<double> site_loss, edge_loss;
    double flip_probability = 0.0;
    bool has_correlated = false;
    std::vector<NoiseSite> exposure_sites;
    if (options.noise) {
        auto built = buildNoiseModel(*options.noise);
        if (!built.ok())
            return built.status();
        if (!built->vacuous()) {
            const NoiseExposure exposure = buildExposure(
                program.graph(), program.deps(), *times,
                &program.schedule().partition.assignment());
            const NoiseAnalysis analysis =
                analyzeNoise(exposure, *built);
            result.analyticSuccessProbability =
                analysis.successProbability;
            site_loss = analysis.siteLoss;
            edge_loss = analysis.edgeLoss;
            flip_probability = built->flipProbability();
            has_correlated = built->hasCorrelated();
            exposure_sites = exposure.sites;
            model = std::move(built.value());
        }
    }

    // The schedule-order replay shares its stepper with the
    // stabilizer backend (identical correction bookkeeping; only the
    // *order* differs — exactly the degree of freedom the scheduler
    // exercises, and what the differential harness cross-checks).
    std::vector<ScheduleShot> shots(options.shots);
    const auto post = [&](int shot, StabReplayResult r) {
        shots[shot].bits = std::move(r.bits);
        shots[shot].randomOutputs = r.randomOutputs;
        if (!model)
            return;
        Rng noise_rng(shotSeed(options.seed, shot) ^
                      kNoiseStreamSalt);
        int lost = 0;
        if (!has_correlated) {
            for (const double p : site_loss)
                if (noise_rng.bernoulli(p))
                    ++lost;
        } else {
            // Per-worker buffer; assign() recycles the capacity so
            // the shot loop allocates nothing after warm-up.
            thread_local std::vector<char> mask;
            mask.assign(site_loss.size(), 0);
            for (std::size_t u = 0; u < site_loss.size(); ++u)
                if (noise_rng.bernoulli(site_loss[u]))
                    mask[u] = 1;
            model->sampleCorrelated(exposure_sites, noise_rng, mask);
            lost = static_cast<int>(
                std::count(mask.begin(), mask.end(), char(1)));
        }
        for (const double p : edge_loss)
            if (noise_rng.bernoulli(p))
                ++lost;
        shots[shot].lostPhotons = lost;
        if (lost == 0 && flip_probability > 0.0)
            for (char &bit : shots[shot].bits)
                if (noise_rng.bernoulli(flip_probability))
                    bit = bit == '0' ? '1' : '0';
    };
    if (simKernelConfig().packedTableau)
        sampleStabShots<StabilizerSim>(
            pattern, *order, base_turns, options.applyByproducts,
            options.shots, result.threads, options.seed,
            simKernelConfig().shotTree, post);
    else
        sampleStabShots<ScalarStabilizerSim>(
            pattern, *order, base_turns, options.applyByproducts,
            options.shots, result.threads, options.seed,
            simKernelConfig().shotTree, post);

    for (ScheduleShot &shot : shots) {
        if (shot.lostPhotons > 0) {
            ++result.lostShots;
            result.lostPhotons += shot.lostPhotons;
            continue;
        }
        const double p = std::ldexp(1.0, -shot.randomOutputs);
        if (options.applyByproducts && !model) {
            // Any correction-consistent interleaving yields the
            // same corrected distribution, so equal bitstrings must
            // agree on their chain-rule probability; a mismatch
            // means the schedule-order replay diverged.
            const auto it = result.probabilities.find(shot.bits);
            if (it != result.probabilities.end() &&
                std::fabs(it->second - p) > 1e-12)
                return Status::internal(
                    "inconsistent exact probabilities for outcome " +
                    shot.bits + ": " + std::to_string(it->second) +
                    " vs " + std::to_string(p));
            result.probabilities[shot.bits] = p;
        }
        ++result.counts[std::move(shot.bits)];
    }
    result.completedShots = options.shots - result.lostShots;
    if (!options.applyByproducts)
        result.notes.push_back(
            "exact probabilities unavailable: byproducts left "
            "uncorrected, per-shot probabilities are conditional on "
            "the intermediate outcomes");
    result.notes.push_back(
        "replayed compiled schedule: " +
        std::to_string(order->size()) +
        " measurements interleaved across " +
        std::to_string(program.schedule().localSchedules.size()) +
        " QPUs (makespan " +
        std::to_string(program.schedule().schedule.makespan) +
        " slots, max delay-line wait " +
        std::to_string(result.maxStorageCycles) + " cycles)");
    if (model)
        result.notes.push_back(
            "schedule-exposure noise applied per shot (" +
            model->describe() +
            "); exact probabilities omitted under noise");
    return result;
}

} // namespace dcmbqc
