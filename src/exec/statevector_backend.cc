#include "exec/statevector_backend.hh"

#include <cmath>

#include <optional>

#include "common/rng.hh"
#include "exec/noise_channel.hh"
#include "exec/shot_tree.hh"
#include "sim/kernel_config.hh"
#include "sim/pattern_runner.hh"
#include "sim/pattern_stepper.hh"
#include "sim/statevector.hh"

namespace dcmbqc
{

namespace
{

/** Dense amplitudes bound the backend to this many output wires. */
constexpr int kMaxWires = 20;

/** Amplitudes below this are rounding noise, not outcomes. */
constexpr double kProbEpsilon = 1e-12;

/** Bitstring key of amplitude index `idx`: char w = wire w. */
std::string
bitsOfIndex(std::size_t idx, int wires)
{
    std::string bits(wires, '0');
    for (int w = 0; w < wires; ++w)
        if (idx & (std::size_t(1) << w))
            bits[w] = '1';
    return bits;
}

} // namespace

BackendCapabilities
StatevectorBackend::capabilities() const
{
    BackendCapabilities caps;
    caps.runsPattern = true;
    caps.exactProbabilities = true;
    caps.maxWires = kMaxWires;
    return caps;
}

Expected<ExecResult>
StatevectorBackend::run(const ExecProgram &program,
                        const ExecOptions &options) const
{
    const Pattern &pattern = program.pattern();
    const int wires = pattern.numWires();

    auto channel = NoiseChannel::make(options, pattern.numNodes());
    if (!channel.ok())
        return channel.status();

    ExecResult result;
    result.numWires = wires;
    result.threads = resolveThreads(options.numThreads, options.shots);

    // Per-shot outcome slots: sampling order is (shot, wire), so the
    // aggregate is bit-identical however the pool schedules chunks.
    // Noise draws use a salted per-shot stream, never the outcome
    // stream, so an inactive channel changes nothing.
    std::vector<std::string> outcomes(options.shots);
    std::vector<std::int32_t> lost(options.shots, 0);
    const SvPatternStepper stepper(pattern, options.applyByproducts);
    std::optional<ShotTree<SvPatternStepper>> tree;
    if (simKernelConfig().shotTree)
        tree.emplace(stepper);
    forEachShot(options.shots, result.threads, [&](int shot) {
        Rng rng(shotSeed(options.seed, shot));
        std::string bits = tree ? tree->run(rng).bits
                                : runShotNaive(stepper, rng).bits;
        if (channel->active()) {
            Rng noise_rng(shotSeed(options.seed, shot) ^
                          kNoiseStreamSalt);
            lost[shot] = channel->sampleLoss(noise_rng);
            if (lost[shot] == 0)
                channel->applyFlips(noise_rng, bits);
        }
        outcomes[shot] = std::move(bits);
    });
    for (int shot = 0; shot < options.shots; ++shot) {
        if (lost[shot] > 0) {
            ++result.lostShots;
            result.lostPhotons += lost[shot];
            continue;
        }
        ++result.counts[std::move(outcomes[shot])];
    }
    result.completedShots = options.shots - result.lostShots;
    if (channel->active())
        result.notes.push_back("noise channel applied per shot (" +
                               channel->description() +
                               "); exact probabilities are noiseless");

    if (options.applyByproducts) {
        // Byproduct correction makes the output state deterministic
        // (independent of the measurement outcomes), so one extra
        // run yields the exact distribution of every outcome.
        Rng rng(shotSeed(options.seed, options.shots));
        const PatternRunResult reference =
            runPattern(pattern, rng, /*apply_byproducts=*/true);
        const auto &amps = reference.outputState.amplitudes();
        for (std::size_t idx = 0; idx < amps.size(); ++idx) {
            const double p = std::norm(amps[idx]);
            if (p > kProbEpsilon)
                result.probabilities[bitsOfIndex(idx, wires)] = p;
        }
    } else {
        result.notes.push_back(
            "exact probabilities unavailable: byproducts left "
            "uncorrected, the raw output state varies per shot");
    }
    return result;
}

} // namespace dcmbqc
