/**
 * @file
 * Schedule-level execution backend: replays a Clifford measurement
 * pattern in the *compiled distributed schedule's* order instead of
 * the pattern's native measurement order. Per-photon generation
 * times come from the per-QPU timelines (`schedulePhotonTimes`);
 * measurements are interleaved across QPUs by generation time,
 * deferred in the delay line until their X/Z correction
 * dependencies have resolved. Because any correction-consistent
 * interleaving of a pattern must reproduce the exact corrected
 * output distribution, executing the schedule directly and
 * differential-testing it against the pattern-order stabilizer
 * backend verifies ScheduleList/RefineBdir end-to-end — the
 * scheduler-verification oracle of ROADMAP item 5.
 */

#ifndef DCMBQC_EXEC_SCHEDULE_BACKEND_HH
#define DCMBQC_EXEC_SCHEDULE_BACKEND_HH

#include <vector>

#include "common/types.hh"
#include "exec/backend.hh"

namespace dcmbqc
{

/** Executes compiled distributed schedules at the pattern level. */
class ScheduleBackend : public ExecutionBackend
{
  public:
    const char *name() const override { return "schedule"; }

    BackendCapabilities capabilities() const override;

    Expected<ExecResult> run(const ExecProgram &program,
                             const ExecOptions &options) const override;
};

/**
 * The schedule-derived global measurement order: a topological
 * order of the full X/Z correction-dependency graph, prioritized
 * by per-photon generation time (earliest generated photon whose
 * corrections have resolved measures next; node id breaks ties).
 * This is the physical interleaving the distributed machine
 * executes — a photon generated early but correction-blocked waits
 * in its delay line.
 *
 * @param wait Optional out-parameter, one entry per node: physical
 *        cycles the photon waited between generation and
 *        measurement (0 for outputs).
 * @return The measured (non-output) nodes in execution order, or a
 *         Status when the correction graph is cyclic — a corrupt
 *         pattern flow.
 */
Expected<std::vector<NodeId>>
scheduleMeasurementOrder(const Pattern &pattern,
                         const std::vector<TimeSlot> &times,
                         std::vector<TimeSlot> *wait = nullptr);

} // namespace dcmbqc

#endif // DCMBQC_EXEC_SCHEDULE_BACKEND_HH
