/**
 * @file
 * Monte-Carlo photon-loss execution backend: samples delay-line loss
 * over a *compiled distributed schedule*. Per-photon storage
 * durations are reconstructed from the schedule (fusee waits on
 * intra-QPU edges + measuree waits from the dependency recurrence,
 * exactly Algorithm 1's accounting), each shot then draws an
 * independent survival trial per photon from photonic/loss_model.
 * Reports the sampled survival rate alongside the analytic success
 * probability so drift between the two flags a modelling bug.
 */

#ifndef DCMBQC_EXEC_LOSS_BACKEND_HH
#define DCMBQC_EXEC_LOSS_BACKEND_HH

#include <vector>

#include "common/types.hh"
#include "exec/backend.hh"

namespace dcmbqc
{

/** Loss-sampling backend over a compiled schedule. */
class MonteCarloLossBackend : public ExecutionBackend
{
  public:
    const char *name() const override { return "mc-loss"; }

    BackendCapabilities capabilities() const override;

    Expected<ExecResult> run(const ExecProgram &program,
                             const ExecOptions &options) const override;
};

/**
 * Physical generation cycle of every photon under a distributed
 * schedule: the start slot of the main task hosting the photon,
 * scaled by the PL ratio. Rebuilt from the result alone (partition
 * members + local layer indices enumerate main tasks QPU-major,
 * matching the LSP builder). Inconsistent payloads (e.g. a decoded
 * artifact whose partition disagrees with the graph) come back as
 * Status.
 */
Expected<std::vector<TimeSlot>>
schedulePhotonTimes(const DcMbqcResult &result, NodeId num_nodes);

/** The intra-QPU restriction of `g` under the result's partition. */
Graph intraQpuEdges(const Graph &g, const DcMbqcResult &result);

} // namespace dcmbqc

#endif // DCMBQC_EXEC_LOSS_BACKEND_HH
