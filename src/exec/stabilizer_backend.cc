#include "exec/stabilizer_backend.hh"

#include <cmath>

#include "common/rng.hh"
#include "exec/noise_channel.hh"
#include "exec/stabilizer_replay.hh"
#include "sim/kernel_config.hh"
#include "sim/stabilizer.hh"
#include "sim/stabilizer_reference.hh"

namespace dcmbqc
{

namespace
{

constexpr double pi = 3.14159265358979323846;

/** Angle tolerance for the Clifford (multiple of pi/2) test. */
constexpr double kAngleEpsilon = 1e-9;

/**
 * Quarter-turn index k with theta ~= k*pi/2 (k in [0,4)), or -1 when
 * theta is not a multiple of pi/2 within tolerance.
 */
int
quarterTurns(double theta)
{
    const double turns = theta / (pi / 2.0);
    const long long k = std::llround(turns);
    if (std::fabs(turns - static_cast<double>(k)) > kAngleEpsilon)
        return -1;
    return static_cast<int>(((k % 4) + 4) % 4);
}

/** One sampled shot: the output bits plus their exact probability. */
struct StabShot
{
    std::string bits;

    /** Non-deterministic output measurements in this shot. */
    int randomOutputs = 0;

    /** Photons lost to the noise channel (> 0 voids the shot). */
    int lostPhotons = 0;
};

} // namespace

BackendCapabilities
StabilizerBackend::capabilities() const
{
    BackendCapabilities caps;
    caps.runsPattern = true;
    caps.cliffordOnly = true;
    caps.exactProbabilities = true;
    return caps;
}

Expected<ExecResult>
StabilizerBackend::run(const ExecProgram &program,
                       const ExecOptions &options) const
{
    const Pattern &pattern = program.pattern();
    const NodeId n = pattern.numNodes();

    std::vector<int> base_turns(n, 0);
    for (NodeId u = 0; u < n; ++u) {
        if (pattern.isOutput(u))
            continue;
        const int k = quarterTurns(pattern.angle(u));
        if (k < 0)
            return Status::failedPrecondition(
                "stabilizer backend requires a Clifford pattern: "
                "node " + std::to_string(u) +
                " measures at angle " +
                std::to_string(pattern.angle(u)) +
                ", not a multiple of pi/2");
        base_turns[u] = k;
    }

    auto channel = NoiseChannel::make(options, pattern.numNodes());
    if (!channel.ok())
        return channel.status();

    ExecResult result;
    result.numWires = pattern.numWires();
    result.threads = resolveThreads(options.numThreads, options.shots);

    std::vector<StabShot> shots(options.shots);
    const auto post = [&](int shot, StabReplayResult r) {
        shots[shot].bits = std::move(r.bits);
        shots[shot].randomOutputs = r.randomOutputs;
        if (channel->active()) {
            Rng noise_rng(shotSeed(options.seed, shot) ^
                          kNoiseStreamSalt);
            shots[shot].lostPhotons =
                channel->sampleLoss(noise_rng);
            if (shots[shot].lostPhotons == 0)
                channel->applyFlips(noise_rng, shots[shot].bits);
        }
    };
    if (simKernelConfig().packedTableau)
        sampleStabShots<StabilizerSim>(
            pattern, pattern.measurementOrder(), base_turns,
            options.applyByproducts, options.shots, result.threads,
            options.seed, simKernelConfig().shotTree, post);
    else
        sampleStabShots<ScalarStabilizerSim>(
            pattern, pattern.measurementOrder(), base_turns,
            options.applyByproducts, options.shots, result.threads,
            options.seed, simKernelConfig().shotTree, post);

    for (StabShot &shot : shots) {
        if (shot.lostPhotons > 0) {
            ++result.lostShots;
            result.lostPhotons += shot.lostPhotons;
            continue;
        }
        // Chain rule over the sequential output measurements: each
        // deterministic one contributes 1, each random one 1/2.
        // Outcome flips decouple the sampled bitstring from its
        // chain-rule probability, so the exact map is skipped when
        // the channel flips bits.
        const double p = std::ldexp(1.0, -shot.randomOutputs);
        if (options.applyByproducts && !channel->active()) {
            // The corrected distribution is outcome-independent, so
            // equal bitstrings must agree on their probability; a
            // mismatch means the flow corrections are wrong.
            const auto it = result.probabilities.find(shot.bits);
            if (it != result.probabilities.end() &&
                std::fabs(it->second - p) > 1e-12)
                return Status::internal(
                    "inconsistent exact probabilities for outcome " +
                    shot.bits + ": " + std::to_string(it->second) +
                    " vs " + std::to_string(p));
            result.probabilities[shot.bits] = p;
        }
        ++result.counts[std::move(shot.bits)];
    }
    result.completedShots = options.shots - result.lostShots;
    if (!options.applyByproducts)
        result.notes.push_back(
            "exact probabilities unavailable: byproducts left "
            "uncorrected, per-shot probabilities are conditional on "
            "the intermediate outcomes");
    if (channel->active())
        result.notes.push_back(
            "noise channel applied per shot (" +
            channel->description() +
            "); exact probabilities omitted under noise");
    return result;
}

} // namespace dcmbqc
