/**
 * @file
 * Stepper for replaying a Clifford measurement pattern on a
 * stabilizer tableau in an arbitrary (correction-valid) measurement
 * order — the shared core of the stabilizer and schedule backends,
 * which differ only in the order they pass. Templated over the
 * tableau type so the same shot loop runs the bit-packed
 * StabilizerSim or the scalar ScalarStabilizerSim oracle, selected
 * per run from simKernelConfig().packedTableau.
 *
 * Plugs into ShotTree / runShotNaive (see exec/shot_tree.hh). The
 * decisions are exactly the random measurements: a deterministic
 * measurement consumes no RNG (matching StabilizerSim::measureZ),
 * so the bernoulli(0.5) draw sequence — and therefore every shot —
 * is bit-identical to the historical per-shot replay.
 */

#ifndef DCMBQC_EXEC_STABILIZER_REPLAY_HH
#define DCMBQC_EXEC_STABILIZER_REPLAY_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "exec/backend.hh"
#include "exec/shot_tree.hh"
#include "mbqc/pattern.hh"
#include "sim/stabilizer.hh"

namespace dcmbqc
{

/** One sampled shot of a stabilizer pattern replay. */
struct StabReplayResult
{
    std::string bits;

    /** Non-deterministic output measurements in this shot. */
    int randomOutputs = 0;
};

template <class Sim>
class StabReplayStepper
{
  public:
    using Result = StabReplayResult;

    struct State
    {
        Sim sim;
        std::vector<int> sx, sz;
        std::size_t step = 0; ///< index into the measurement order
        std::size_t wire = 0; ///< index into the outputs
        /**
         * Stopped at a random decision: the conjugation and the
         * measureX H (or the output byproducts) are already applied.
         */
        bool pending = false;
        Result partial;

        explicit State(int n) : sim(n), sx(n, 0), sz(n, 0) {}
    };

    /** All referents must outlive the stepper. */
    StabReplayStepper(const Pattern &pattern,
                      const std::vector<NodeId> &order,
                      const std::vector<int> &base_turns,
                      bool apply_byproducts)
        : pattern_(&pattern), order_(&order), turns_(&base_turns),
          applyByproducts_(apply_byproducts)
    {
    }

    State root() const
    {
        State s(pattern_->numNodes());
        // Entangling commutes across qubits, so the whole graph
        // state can be prepared up front; adaptivity lives in the
        // angles only.
        s.sim.prepareGraphState(pattern_->graph());
        s.partial.bits.assign(pattern_->outputs().size(), '0');
        return s;
    }

    bool advance(State &s) const
    {
        const auto &order = *order_;
        while (s.step < order.size()) {
            const NodeId m = order[s.step];
            if (!s.pending) {
                // Adapted angle (-1)^{sx} theta + sz*pi, exactly in
                // integer quarter turns; conjugate by P(-k*pi/2) and
                // open the measureX H so the pending measurement is
                // plain Z-basis.
                const int k =
                    (((s.sx[m] ? -(*turns_)[m] : (*turns_)[m]) +
                      (s.sz[m] ? 2 : 0)) % 4 + 4) % 4;
                switch (k) {
                  case 1: s.sim.applySdg(m); break;
                  case 2: s.sim.applyZ(m); break;
                  case 3: s.sim.applyS(m); break;
                  default: break;
                }
                s.sim.applyH(m);
                s.pending = true;
            }
            if (s.sim.zMeasurementIsRandom(m))
                return false;
            const StabMeasureResult mr =
                s.sim.measureZWithOutcome(m, 0);
            s.sim.applyH(m);
            s.pending = false;
            finishMeasure(s, m, mr.outcome);
        }

        const auto &outputs = pattern_->outputs();
        while (s.wire < outputs.size()) {
            const NodeId o = outputs[s.wire];
            if (!s.pending) {
                if (applyByproducts_) {
                    if (s.sz[o])
                        s.sim.applyZ(o);
                    if (s.sx[o])
                        s.sim.applyX(o);
                }
                s.pending = true;
            }
            if (s.sim.zMeasurementIsRandom(o))
                return false;
            const StabMeasureResult mr =
                s.sim.measureZWithOutcome(o, 0);
            s.pending = false;
            if (mr.outcome)
                s.partial.bits[s.wire] = '1';
            ++s.wire;
        }
        return true;
    }

    double prob0(const State &) const { return 0.5; }

    /** Identical RNG use to StabilizerSim::measureZ's random case. */
    int draw(Rng &rng, double) const
    {
        return rng.bernoulli(0.5) ? 1 : 0;
    }

    void applyOutcome(State &s, int outcome) const
    {
        const auto &order = *order_;
        if (s.step < order.size()) {
            const NodeId m = order[s.step];
            s.sim.measureZWithOutcome(m, outcome);
            s.sim.applyH(m);
            s.pending = false;
            finishMeasure(s, m, outcome);
            return;
        }
        const NodeId o = pattern_->outputs()[s.wire];
        s.sim.measureZWithOutcome(o, outcome);
        s.pending = false;
        if (outcome)
            s.partial.bits[s.wire] = '1';
        ++s.partial.randomOutputs;
        ++s.wire;
    }

    Result result(const State &s) const { return s.partial; }

    std::size_t stateBytes(const State &s) const
    {
        return s.sim.footprintWords() * sizeof(std::uint64_t) +
            (s.sx.size() + s.sz.size()) * sizeof(int) +
            s.partial.bits.size() + sizeof(State);
    }

  private:
    void finishMeasure(State &s, NodeId m, int outcome) const
    {
        if (outcome) {
            // Flow corrections: X on f(m), Z on N(f(m)) \ {m}.
            const NodeId succ = pattern_->flow(m);
            s.sx[succ] ^= 1;
            for (const auto &adj :
                 pattern_->graph().adjacency(succ))
                if (adj.neighbor != m)
                    s.sz[adj.neighbor] ^= 1;
        }
        ++s.step;
    }

    const Pattern *pattern_;
    const std::vector<NodeId> *order_;
    const std::vector<int> *turns_;
    bool applyByproducts_;
};

/**
 * Sample `shots` shots of a Clifford pattern replay over the worker
 * pool, through the shot prefix tree or the naive per-shot loop
 * (bit-identical either way), calling post(shot, result) from the
 * worker that sampled the shot. `post` must be safe to call
 * concurrently for distinct shots.
 */
template <class Sim, class Post>
void
sampleStabShots(const Pattern &pattern,
                const std::vector<NodeId> &order,
                const std::vector<int> &base_turns,
                bool apply_byproducts, int shots, int threads,
                std::int64_t seed, bool use_tree, const Post &post)
{
    const StabReplayStepper<Sim> stepper(pattern, order, base_turns,
                                         apply_byproducts);
    if (use_tree) {
        ShotTree<StabReplayStepper<Sim>> tree(stepper);
        forEachShot(shots, threads, [&](int shot) {
            Rng rng(shotSeed(seed, shot));
            post(shot, tree.run(rng));
        });
        return;
    }
    forEachShot(shots, threads, [&](int shot) {
        Rng rng(shotSeed(seed, shot));
        post(shot, runShotNaive(stepper, rng));
    });
}

} // namespace dcmbqc

#endif // DCMBQC_EXEC_STABILIZER_REPLAY_HH
