/**
 * @file
 * `ExecProgram`: the unit of work an `ExecutionBackend` runs. It
 * bundles the semantic payload (a measurement pattern) with the
 * structural payload (computation graph + real-time dependency
 * graph) and, optionally, a compiled distributed schedule — so one
 * program object can feed all three backends: the simulators read
 * the pattern, the Monte-Carlo loss backend reads the schedule.
 *
 * Factories derive whatever is derivable (a circuit is lowered to
 * its pattern; graph and dependencies are extracted from the
 * pattern), so callers only supply what they actually have.
 */

#ifndef DCMBQC_EXEC_PROGRAM_HH
#define DCMBQC_EXEC_PROGRAM_HH

#include <optional>
#include <string>

#include "api/status.hh"
#include "circuit/circuit.hh"
#include "core/pipeline.hh"
#include "graph/digraph.hh"
#include "graph/graph.hh"
#include "mbqc/pattern.hh"

namespace dcmbqc
{

class CompileRequest;

/** One executable program, with optional compiled schedule. */
class ExecProgram
{
  public:
    /** Lower a circuit to its pattern and wrap it. */
    static ExecProgram fromCircuit(const Circuit &circuit,
                                   std::string label = "");

    /** Wrap a prebuilt pattern (graph/deps derived from it). */
    static ExecProgram fromPattern(Pattern pattern,
                                   std::string label = "");

    /**
     * Wrap a raw computation graph + dependency graph. No pattern:
     * only schedule-level backends (mc-loss) can run it.
     */
    static ExecProgram fromGraph(Graph graph, Digraph deps,
                                 std::string label = "");

    /**
     * Build from a compile request, reusing its entry-point payload
     * (the driver's compileAndExecute path).
     */
    static ExecProgram fromRequest(const CompileRequest &request);

    /** Attach a compiled distributed schedule (chainable). */
    ExecProgram &withSchedule(DcMbqcResult result);

    /**
     * Attach a monolithic single-QPU baseline schedule (chainable).
     * Schedule-level backends (mc-loss) accept either form: a
     * baseline carries per-photon generation times but no partition,
     * so every fusion is intra-QPU and no connector noise applies.
     */
    ExecProgram &withBaseline(BaselineResult baseline);

    const std::string &label() const { return label_; }

    bool hasPattern() const { return pattern_.has_value(); }
    bool hasSchedule() const { return compiled_.has_value(); }
    bool hasBaseline() const { return baseline_.has_value(); }

    /** The measurement pattern; panics when absent (check first). */
    const Pattern &pattern() const;

    /** Computation graph (always present). */
    const Graph &graph() const { return graph_; }

    /** Real-time dependency graph (always present). */
    const Digraph &deps() const { return deps_; }

    /** The compiled schedule; panics when absent (check first). */
    const DcMbqcResult &schedule() const;

    /** The baseline schedule; panics when absent (check first). */
    const BaselineResult &baseline() const;

    /**
     * Structural consistency: graph/deps node counts match, and an
     * attached schedule covers exactly the graph's nodes.
     */
    Status validate() const;

  private:
    ExecProgram() = default;

    std::string label_;
    std::optional<Pattern> pattern_;
    Graph graph_;
    Digraph deps_;
    std::optional<DcMbqcResult> compiled_;
    std::optional<BaselineResult> baseline_;
};

} // namespace dcmbqc

#endif // DCMBQC_EXEC_PROGRAM_HH
