#include "exec/noise_channel.hh"

#include <algorithm>

namespace dcmbqc
{

Expected<NoiseChannel>
NoiseChannel::make(const ExecOptions &options, NodeId num_nodes)
{
    NoiseChannel channel;
    if (!options.noise)
        return channel;

    auto model = buildNoiseModel(*options.noise);
    if (!model.ok())
        return model.status();
    if (model->vacuous())
        return channel;

    channel.model_ = std::move(model.value());
    channel.description_ = channel.model_.describe();
    channel.sites_.assign(num_nodes, NoiseSite{});
    channel.siteLoss_.assign(num_nodes, 0.0);
    for (NodeId u = 0; u < num_nodes; ++u) {
        channel.sites_[u].totalSites = static_cast<int>(num_nodes);
        // Independent per-site loss only; correlated mechanisms
        // sample through their own hook, so their analytic factor
        // must not be double-counted here.
        double survival = 1.0;
        for (const auto &mechanism : channel.model_.mechanisms())
            if (!mechanism->correlated())
                survival *= mechanism->siteSurvival(channel.sites_[u]);
        channel.siteLoss_[u] =
            std::min(1.0, std::max(0.0, 1.0 - survival));
        if (channel.siteLoss_[u] > 0.0)
            channel.anyLoss_ = true;
    }
    channel.correlated_ = channel.model_.hasCorrelated();
    channel.flip_ = channel.model_.flipProbability();
    channel.active_ = true;
    return channel;
}

int
NoiseChannel::sampleLoss(Rng &rng) const
{
    if (!active_ || (!anyLoss_ && !correlated_))
        return 0;
    if (!correlated_) {
        int lost = 0;
        for (const double p : siteLoss_)
            if (rng.bernoulli(p))
                ++lost;
        return lost;
    }
    // With a correlated mechanism in play the independent draws and
    // the burst draws can hit the same photon; a mask keeps the lost
    // count honest.
    std::vector<char> lost(sites_.size(), 0);
    for (std::size_t u = 0; u < siteLoss_.size(); ++u)
        if (rng.bernoulli(siteLoss_[u]))
            lost[u] = 1;
    model_.sampleCorrelated(sites_, rng, lost);
    return static_cast<int>(
        std::count(lost.begin(), lost.end(), char(1)));
}

void
NoiseChannel::applyFlips(Rng &rng, std::string &bits) const
{
    if (!active_ || flip_ <= 0.0)
        return;
    for (char &bit : bits)
        if (rng.bernoulli(flip_))
            bit = bit == '0' ? '1' : '0';
}

} // namespace dcmbqc
