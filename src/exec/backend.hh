/**
 * @file
 * The pluggable execution subsystem closing the compile -> execute
 * loop: a capability-queried `ExecutionBackend` interface, a
 * process-wide registry holding the three built-in backends
 * ("statevector", "stabilizer", "mc-loss"), and the
 * `executeProgram` dispatcher that validates options, checks the
 * program against the backend's capabilities, and times the run.
 * Everything a caller can get wrong comes back as a Status; a
 * backend never aborts on bad input.
 */

#ifndef DCMBQC_EXEC_BACKEND_HH
#define DCMBQC_EXEC_BACKEND_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/status.hh"
#include "exec/options.hh"
#include "exec/program.hh"
#include "exec/result.hh"

namespace dcmbqc
{

/** What a backend can run, queried before dispatch. */
struct BackendCapabilities
{
    /** Consumes the program's measurement pattern. */
    bool runsPattern = false;

    /** Consumes the program's compiled distributed schedule. */
    bool runsSchedule = false;

    /**
     * Restricted to Clifford patterns (every measurement angle a
     * multiple of pi/2).
     */
    bool cliffordOnly = false;

    /** Can report exact per-outcome probabilities. */
    bool exactProbabilities = false;

    /**
     * Upper bound on output wires (0 = unbounded). The dense
     * statevector backend bounds this to keep memory sane.
     */
    int maxWires = 0;
};

/**
 * One execution engine. Implementations are stateless and
 * thread-safe: a single registered instance serves concurrent runs.
 */
class ExecutionBackend
{
  public:
    virtual ~ExecutionBackend() = default;

    /** Stable registry name ("statevector", ...). */
    virtual const char *name() const = 0;

    virtual BackendCapabilities capabilities() const = 0;

    /**
     * Run the program. Options and program/capability compatibility
     * are pre-checked by `executeProgram`; implementations re-check
     * only what is specific to them (e.g. the stabilizer backend's
     * Clifford angle test) and report violations via Status.
     */
    virtual Expected<ExecResult> run(const ExecProgram &program,
                                     const ExecOptions &options)
        const = 0;
};

/**
 * Look up a backend by registry name; null when unknown. The three
 * built-in backends are registered on first use.
 */
const ExecutionBackend *findBackend(const std::string &name);

/** Registry names in registration order. */
std::vector<std::string> backendNames();

/**
 * Register an additional backend (plug-in seam; the built-ins need
 * no call). Rejects null and duplicate names.
 */
Status registerBackend(std::unique_ptr<ExecutionBackend> backend);

/**
 * Validate options, resolve the backend, check the program against
 * its capabilities, run it, and stamp timing/threading metadata into
 * the result. This is the one seam every execution goes through —
 * the driver's execute()/compileAndExecute() and the CLI both call
 * it.
 */
Expected<ExecResult> executeProgram(const ExecProgram &program,
                                    const ExecOptions &options);

/**
 * Derive the independent per-shot RNG seed for (master seed, shot).
 * Shared by the backends so a result is reproducible from
 * (backend, seed) alone, bit-identical for any worker count.
 */
std::uint64_t shotSeed(std::int64_t seed, int shot);

/**
 * Run `body(shot)` for every shot in [0, shots) across `threads`
 * workers (resolved: <=1 runs inline). Bodies must be independent
 * and write only to per-shot slots.
 */
void forEachShot(int shots, int threads,
                 const std::function<void(int)> &body);

/** Resolve an ExecOptions thread count (0 = hardware) for `shots`. */
int resolveThreads(int num_threads, int shots);

} // namespace dcmbqc

#endif // DCMBQC_EXEC_BACKEND_HH
