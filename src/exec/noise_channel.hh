/**
 * @file
 * `NoiseChannel`: the simulator backends' view of a noise model. A
 * pattern run has no schedule, so the channel evaluates each
 * mechanism over schedule-free exposure (zero storage, no
 * connectors) — storage-dependent mechanisms contribute nothing
 * here by design — and distills the model into the two effects a
 * pattern-level simulator can apply: a photon-loss draw that voids
 * the shot, and an outcome bit-flip per output wire.
 *
 * Noise draws come from a *separate* RNG stream
 * (`noiseShotSeed(seed, shot)`), never the outcome stream, so a
 * vacuous channel leaves every sampled outcome bit-identical to a
 * run without a noise config.
 */

#ifndef DCMBQC_EXEC_NOISE_CHANNEL_HH
#define DCMBQC_EXEC_NOISE_CHANNEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "api/status.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "exec/options.hh"
#include "noise/model.hh"

namespace dcmbqc
{

/**
 * Stream salt separating noise draws from outcome draws; XORed into
 * `shotSeed(seed, shot)` to derive the per-shot noise stream.
 */
inline constexpr std::uint64_t kNoiseStreamSalt =
    0x5851f42d4c957f2dull;

/** Per-shot noise effects for the pattern-level simulators. */
class NoiseChannel
{
  public:
    /**
     * Build the channel for `options.noise` over `num_nodes` pattern
     * photons. An absent or vacuous config yields an inactive
     * channel (and no run-time cost); an invalid one is reported via
     * Status.
     */
    static Expected<NoiseChannel> make(const ExecOptions &options,
                                       NodeId num_nodes);

    /** False: every query is a no-op, draw nothing. */
    bool active() const { return active_; }

    /**
     * Sample photon loss for one shot: independent per-site draws
     * first, then the correlated hooks, in site order. Returns the
     * number of lost photons (> 0 voids the shot).
     */
    int sampleLoss(Rng &rng) const;

    /** Flip each outcome bit independently with the composite p. */
    void applyFlips(Rng &rng, std::string &bits) const;

    /** "delay-line+depolarizing" — for result notes. */
    const std::string &description() const { return description_; }

  private:
    NoiseChannel() = default;

    NoiseModel model_;
    std::vector<NoiseSite> sites_;
    std::vector<double> siteLoss_;
    double flip_ = 0.0;
    bool anyLoss_ = false;
    bool correlated_ = false;
    bool active_ = false;
    std::string description_;
};

} // namespace dcmbqc

#endif // DCMBQC_EXEC_NOISE_CHANNEL_HH
