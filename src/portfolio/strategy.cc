#include "portfolio/strategy.hh"

#include <utility>

namespace dcmbqc
{

StrategySpace::StrategySpace(CompileOptions base)
    : base_(std::move(base))
{
    // A candidate must compile exactly one strategy; recursion into
    // another race would square the fan-out.
    base_.portfolio(1);
}

std::vector<Strategy>
StrategySpace::enumerate(int k) const
{
    std::vector<Strategy> strategies;
    strategies.reserve(static_cast<std::size_t>(k > 0 ? k : 0));
    const std::uint64_t base_seed = base_.config().partition.seed;
    for (int i = 0; i < k; ++i) {
        Strategy s;
        s.options = base_;
        switch (i) {
          case 0:
            s.name = "default";
            break;
          case 1:
            // Deeper annealing: more BDIR iterations from a hotter
            // start explore interchange moves the default budget
            // rejects early.
            s.name = "bdir-hot";
            s.options.bdirInitialTemperature(25.0)
                .bdirMaxIterations(
                    base_.config().bdir.maxIterations * 3 + 20);
            break;
          case 2:
            // List schedule only: on shallow programs the annealer
            // occasionally trades makespan for survival; this
            // candidate keeps the pre-refinement schedule in play.
            s.name = "bdir-off";
            s.options.useBdir(false);
            break;
          case 3:
            // The other placement order changes every local layer
            // assignment, and with it storage and sync placement.
            s.name = base_.config().order == PlacementOrder::Creation
                ? "placement-rcm"
                : "placement-creation";
            s.options.placementOrder(
                base_.config().order == PlacementOrder::Creation
                    ? PlacementOrder::DependencyAwareRcm
                    : PlacementOrder::Creation);
            break;
          case 4:
            // Tight balance: a lower imbalance cap spreads photons
            // evenly, shortening the critical QPU's timeline.
            s.name = "balanced";
            s.options.alphaMax(1.1);
            break;
          case 5:
            // Loose balance with a faster resolution ramp: lets
            // modularity dominate, often fewer cut edges.
            s.name = "loose-cuts";
            s.options.alphaMax(2.0).gamma(1.05);
            break;
          case 6:
            // Fine-grained probe threshold: the adaptive search
            // accepts smaller modularity gains, finding partitions
            // the default epsilon skips past.
            s.name = "fine-probe";
            s.options.epsilonQ(0.001);
            break;
          default: {
            // Re-seeded replicas of the default strategy: both
            // stochastic passes (partition probes, BDIR annealing)
            // explore a different trajectory per offset.
            const int offset = i - 6;
            s.name = "seed+" + std::to_string(offset);
            s.options.seed(
                base_seed +
                0x9e3779b97f4a7c15ull *
                    static_cast<std::uint64_t>(offset));
            break;
          }
        }
        strategies.push_back(std::move(s));
    }
    return strategies;
}

} // namespace dcmbqc
