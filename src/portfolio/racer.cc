#include "portfolio/racer.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "api/cancellation.hh"
#include "common/thread_pool.hh"
#include "exec/backend.hh"
#include "exec/loss_backend.hh"
#include "mbqc/dependency.hh"
#include "noise/analysis.hh"
#include "noise/model.hh"

namespace dcmbqc
{

namespace
{

double
elapsedMillis(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - since)
        .count();
}

/**
 * Composite log-survival of one candidate's schedule, charged
 * against the race's fixed scoring model over the schedule-derived
 * exposure — exactly what the schedule backend and mc-loss sample.
 */
Expected<double>
scoreSchedule(const CompileRequest &request,
              const CompileReport &report, const NoiseModel &model)
{
    if (!report.distributed)
        return Status::internal(
            "portfolio candidate produced no distributed result");
    const DcMbqcResult &result = *report.distributed;

    const Graph *graph = nullptr;
    Digraph deps_storage;
    const Digraph *deps = nullptr;
    switch (request.entryPoint()) {
      case CompileRequest::EntryPoint::Graph:
        graph = &request.graph();
        deps = &request.deps();
        break;
      case CompileRequest::EntryPoint::Pattern:
        graph = &request.pattern().graph();
        deps_storage = realTimeDependencyGraph(request.pattern());
        deps = &deps_storage;
        break;
      case CompileRequest::EntryPoint::Circuit:
        if (!report.pattern)
            return Status::internal(
                "portfolio candidate retained no pattern to score");
        graph = &report.pattern->graph();
        deps_storage = realTimeDependencyGraph(*report.pattern);
        deps = &deps_storage;
        break;
    }

    auto times =
        schedulePhotonTimes(result, graph->numNodes());
    if (!times.ok())
        return times.status();
    const NoiseExposure exposure = buildExposure(
        *graph, *deps, *times, &result.partition.assignment());
    return analyzeNoise(exposure, model).logSurvival;
}

/** Per-candidate slot (token is neither copyable nor movable). */
struct Slot
{
    CancellationToken token;
    std::optional<Expected<CompileReport>> report;
    double score = 0.0;
    bool scored = false;
    double wallMillis = 0.0;
};

} // namespace

PortfolioRacer::PortfolioRacer(CompileOptions base, RaceConfig config)
    : base_(std::move(base)), config_(config)
{
}

Expected<PortfolioRacer::Outcome>
PortfolioRacer::race(const CompileRequest &request) const
{
    const auto race_start = std::chrono::steady_clock::now();
    Status status = base_.validate();
    if (!status.ok())
        return status;
    status = request.validate();
    if (!status.ok())
        return status;
    const CancellationToken *parent = request.cancellation();
    if (parent) {
        status = parent->check();
        if (!status.ok())
            return status;
    }

    // Fixed scoring model: the user's budget when it has teeth,
    // else the reference budget, so strategies always compete on a
    // physical objective.
    NoiseConfig scoring = base_.noiseConfig().value_or(NoiseConfig{});
    auto model = buildNoiseModel(scoring);
    if (!model.ok())
        return model.status();
    if (model->vacuous()) {
        scoring = NoiseConfig{};
        scoring.add("delay-line")
            .add("connector", {{"insertion_loss_db", 1.5}});
        model = buildNoiseModel(scoring);
        if (!model.ok())
            return model.status();
    }

    const int k = std::max(1, config_.candidates);
    const std::vector<Strategy> strategies =
        StrategySpace(base_).enumerate(k);

    std::vector<std::unique_ptr<Slot>> slots;
    slots.reserve(strategies.size());
    for (std::size_t i = 0; i < strategies.size(); ++i)
        slots.push_back(std::make_unique<Slot>());

    std::mutex mutex;
    std::condition_variable done_cv;
    int remaining = k;

    const int workers = std::min(
        k, config_.numThreads > 0 ? config_.numThreads
                                  : ThreadPool::defaultNumThreads());
    {
        ThreadPool pool(std::max(1, workers));
        for (int i = 0; i < k; ++i) {
            pool.submit([&, i] {
                Slot &slot = *slots[i];
                const auto start =
                    std::chrono::steady_clock::now();
                if (parent && parent->cancelled())
                    slot.token.cancel();
                CompileRequest candidate = request;
                candidate.withCancellation(&slot.token);
                const CompilerDriver driver(strategies[i].options);
                auto report = driver.compile(candidate);
                if (report.ok()) {
                    auto score =
                        scoreSchedule(candidate, *report, *model);
                    if (score.ok()) {
                        slot.score = *score;
                        slot.scored = true;
                    } else {
                        report = score.status();
                    }
                }
                slot.report.emplace(std::move(report));
                slot.wallMillis = elapsedMillis(start);
                {
                    std::lock_guard<std::mutex> lock(mutex);
                    --remaining;
                    // The default strategy is the pacesetter: once
                    // it is in, losers get graceMillis to wrap up.
                    if (i == 0 && config_.graceMillis >= 0) {
                        for (int j = 1; j < k; ++j) {
                            if (config_.graceMillis == 0)
                                slots[j]->token.cancel();
                            else
                                slots[j]->token
                                    .setDeadlineAfterMillis(
                                        config_.graceMillis);
                        }
                    }
                }
                done_cv.notify_all();
            });
        }
        // Babysit the race instead of a blind pool.wait(): a parent
        // cancel / deadline must propagate to every candidate token
        // while they are mid-pipeline.
        std::unique_lock<std::mutex> lock(mutex);
        bool propagated = false;
        while (remaining > 0) {
            done_cv.wait_for(lock, std::chrono::milliseconds(20));
            if (!propagated && parent && !parent->check().ok()) {
                for (const auto &slot : slots)
                    slot->token.cancel();
                propagated = true;
            }
        }
        lock.unlock();
        pool.wait();
    }

    PortfolioReport race;
    race.requested = k;
    race.candidates.reserve(strategies.size());
    int winner = -1;
    for (int i = 0; i < k; ++i) {
        const Slot &slot = *slots[i];
        PortfolioCandidate entry;
        entry.strategy = strategies[i].name;
        entry.seed =
            strategies[i].options.config().partition.seed;
        entry.status = slot.report->ok()
            ? Status::okStatus()
            : slot.report->status();
        entry.wallMillis = slot.wallMillis;
        entry.cancelled =
            entry.status.code() == StatusCode::Cancelled ||
            entry.status.code() == StatusCode::DeadlineExceeded;
        if (entry.cancelled)
            ++race.cancelledEarly;
        if (slot.scored) {
            const CompileReport &report = slot.report->value();
            entry.logSurvival = slot.score;
            entry.successProbability = std::exp(slot.score);
            entry.makespan = report.distributed->schedule.makespan;
            entry.connectors = report.distributed->numConnectors;
            entry.cacheHit = report.cacheHit;
            // Strict improvement only: ties keep the earliest
            // strategy, so the default wins unless beaten.
            if (winner < 0 || slot.score > slots[winner]->score)
                winner = i;
        }
        race.candidates.push_back(std::move(entry));
    }

    if (winner < 0) {
        // Every candidate failed; the base configuration's error is
        // the one the caller can act on.
        return slots[0]->report->status();
    }
    race.winnerIndex = winner;
    race.candidates[winner].winner = true;

    Outcome outcome;
    outcome.report = std::move(slots[winner]->report->value());

    if (config_.validateWinner) {
        const Pattern *pattern = nullptr;
        if (request.entryPoint() ==
            CompileRequest::EntryPoint::Pattern)
            pattern = &request.pattern();
        else if (outcome.report.pattern)
            pattern = &*outcome.report.pattern;
        if (!pattern) {
            race.validationNote =
                "validation skipped: graph-entry program carries "
                "no pattern";
        } else {
            ExecOptions exec;
            exec.backend = "schedule";
            exec.shots = 64;
            exec.seed = static_cast<std::int64_t>(
                base_.config().partition.seed &
                0x7fffffffffffffffull);
            const ExecProgram program =
                ExecProgram::fromPattern(*pattern, request.label())
                    .withSchedule(*outcome.report.distributed);
            auto replay = executeProgram(program, exec);
            if (replay.ok()) {
                race.validated = true;
                race.validationNote =
                    "winner replayed on the schedule backend (" +
                    std::to_string(exec.shots) + " shots)";
            } else if (replay.status().code() ==
                       StatusCode::FailedPrecondition) {
                race.validationNote =
                    "validation skipped: " +
                    replay.status().message();
            } else {
                // The oracle rejected the winning schedule: that is
                // a compiler bug, not a race detail.
                return replay.status();
            }
        }
    }

    race.raceMillis = elapsedMillis(race_start);
    outcome.race = std::move(race);
    return outcome;
}

} // namespace dcmbqc
