/**
 * @file
 * Race results of a compile-strategy portfolio: one entry per
 * candidate strategy with its compile outcome and composite
 * log-survival score, plus the winner index. Deliberately a light
 * header (no driver dependency) so `CompileReport` can embed a
 * `PortfolioReport` while the racer itself builds on the driver.
 */

#ifndef DCMBQC_PORTFOLIO_REPORT_HH
#define DCMBQC_PORTFOLIO_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "api/status.hh"

namespace dcmbqc
{

/** Outcome of one strategy in a portfolio race. */
struct PortfolioCandidate
{
    /** Strategy name from the StrategySpace ("default", ...). */
    std::string strategy;

    /** Seed this candidate's stochastic passes ran under. */
    std::uint64_t seed = 0;

    /** Compile outcome; stragglers cancelled early carry Cancelled
     *  or DeadlineExceeded. */
    Status status;

    /** Composite log-survival of the candidate's schedule under the
     *  race's scoring model (higher is better; 0 when failed). */
    double logSurvival = 0.0;

    /** exp(logSurvival); 0 when the candidate failed. */
    double successProbability = 0.0;

    /** Schedule diagnostics of a successful candidate. */
    int makespan = 0;
    int connectors = 0;

    /** Wall-clock of this candidate's compile + scoring. */
    double wallMillis = 0.0;

    /** Served from the shared compile cache. */
    bool cacheHit = false;

    /** Cancelled before finishing (straggler control / parent). */
    bool cancelled = false;

    /** This candidate's schedule was returned. */
    bool winner = false;
};

/** Race summary attached to the winning compile report. */
struct PortfolioReport
{
    /** Candidate count requested (K). */
    int requested = 0;

    /** Index of the winning candidate; -1 when every one failed. */
    int winnerIndex = -1;

    /** Wall-clock of the whole race. */
    double raceMillis = 0.0;

    /** Losers cancelled before finishing their pipeline. */
    int cancelledEarly = 0;

    /** Winner replayed successfully on the schedule backend. */
    bool validated = false;

    /** Why validation passed / was skipped. */
    std::string validationNote;

    /** One entry per strategy, in StrategySpace order. */
    std::vector<PortfolioCandidate> candidates;
};

} // namespace dcmbqc

#endif // DCMBQC_PORTFOLIO_REPORT_HH
