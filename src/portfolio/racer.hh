/**
 * @file
 * `PortfolioRacer`: fans K candidate compile strategies across the
 * thread pool, scores every finished candidate's schedule by
 * composite log-survival (src/noise/analysis), and returns the best
 * schedule together with a per-candidate `PortfolioReport`. Each
 * candidate compiles under its own `CancellationToken`, so a parent
 * cancellation / deadline aborts the whole race at pass
 * granularity, and straggler control can cut losers loose once the
 * default strategy has finished. Candidates share the base options'
 * compile cache: re-racing a request hits per-candidate.
 */

#ifndef DCMBQC_PORTFOLIO_RACER_HH
#define DCMBQC_PORTFOLIO_RACER_HH

#include <cstdint>

#include "api/driver.hh"
#include "portfolio/report.hh"
#include "portfolio/strategy.hh"

namespace dcmbqc
{

/** Tuning of one race. */
struct RaceConfig
{
    /** Strategies to race (clamped to >= 1). */
    int candidates = 2;

    /** Worker threads (0 = hardware concurrency). */
    int numThreads = 0;

    /**
     * Straggler control: once the default strategy (candidate 0)
     * has finished, losers still running get this many more
     * milliseconds before their tokens fire; 0 cancels them at
     * their next pass boundary. Negative (the default) waits for
     * every candidate — the fully deterministic mode. The default
     * strategy itself is never cut, so the "never worse than K=1"
     * guarantee survives straggler control.
     */
    std::int64_t graceMillis = -1;

    /**
     * Replay the winner on the schedule backend (64 shots) before
     * returning it. Non-Clifford or pattern-less programs skip
     * validation with a note; an execution *failure* fails the race
     * — the oracle caught an inconsistent schedule.
     */
    bool validateWinner = false;
};

/** Races K strategies and keeps the best schedule. */
class PortfolioRacer
{
  public:
    /** The race outcome: the winner's report + the race table. */
    struct Outcome
    {
        CompileReport report;
        PortfolioReport race;
    };

    PortfolioRacer(CompileOptions base, RaceConfig config);

    /**
     * Race the request across the strategy space. The returned
     * report is the winning candidate's compile report (its cache
     * key, stages, pattern — everything a K=1 compile would carry).
     * Fails only when every candidate fails (first candidate's
     * status, so a base-config error reads naturally) or when the
     * request/base options are invalid.
     *
     * Scoring model: the base options' noise config when it is
     * non-vacuous, else a built-in reference budget (delay-line
     * storage + 1.5 dB connectors) so a race without a user budget
     * still optimizes a physical objective. The model is fixed
     * across candidates — every strategy is scored against the same
     * error budget.
     */
    Expected<Outcome> race(const CompileRequest &request) const;

  private:
    CompileOptions base_;
    RaceConfig config_;
};

} // namespace dcmbqc

#endif // DCMBQC_PORTFOLIO_RACER_HH
