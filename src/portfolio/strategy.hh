/**
 * @file
 * `StrategySpace`: the deterministic menu of compile-strategy
 * variants a portfolio race draws from. Mirrors the dimensions the
 * paper's evaluation sweeps by hand — partition knobs (epsilon_Q,
 * alpha_max, gamma), placement order, BDIR annealing budget, and
 * seeds for the stochastic passes. Candidate 0 is always the
 * caller's configuration unchanged, which is what makes the race's
 * "never worse than the K=1 default" guarantee structural.
 */

#ifndef DCMBQC_PORTFOLIO_STRATEGY_HH
#define DCMBQC_PORTFOLIO_STRATEGY_HH

#include <string>
#include <vector>

#include "api/options.hh"

namespace dcmbqc
{

/** One named candidate configuration. */
struct Strategy
{
    /** Stable display name ("default", "bdir-hot", "seed+3", ...). */
    std::string name;

    /** The full option set this candidate compiles under. */
    CompileOptions options;
};

/** Enumerates candidate configurations derived from a base. */
class StrategySpace
{
  public:
    explicit StrategySpace(CompileOptions base);

    /**
     * The first `k` strategies: index 0 is the base unchanged
     * ("default"), indices 1..7 vary one dimension each (BDIR
     * budget, BDIR off, placement order, partition balance /
     * resolution), and further indices re-seed the stochastic
     * passes ("seed+i"). Every returned option set has portfolio
     * mode stripped (a candidate never races recursively) and
     * shares the base's cache and noise config.
     */
    std::vector<Strategy> enumerate(int k) const;

  private:
    CompileOptions base_;
};

} // namespace dcmbqc

#endif // DCMBQC_PORTFOLIO_STRATEGY_HH
