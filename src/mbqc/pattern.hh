/**
 * @file
 * One-way MBQC measurement pattern (Section II-A of the paper): a
 * graph state plus a sequence of adaptive single-qubit measurements,
 * with a causal flow that determines the Pauli byproduct
 * corrections.
 */

#ifndef DCMBQC_MBQC_PATTERN_HH
#define DCMBQC_MBQC_PATTERN_HH

#include <vector>

#include "common/types.hh"
#include "graph/graph.hh"

namespace dcmbqc
{

/**
 * A measurement pattern with causal flow.
 *
 * Node ids are creation order. Every non-output node carries a base
 * measurement angle theta (measured in the XY-plane basis
 * {|+_theta>, |-_theta>}); the runtime-adapted angle is
 * (-1)^{sx} theta + sz pi, where sx / sz are the parities of the
 * X- and Z-dependency outcomes (flow construction).
 */
class Pattern
{
  public:
    Pattern() = default;

    /** The graph state's entanglement graph. */
    const Graph &graph() const { return graph_; }
    Graph &mutableGraph() { return graph_; }

    NodeId numNodes() const { return graph_.numNodes(); }

    /** Base measurement angle of node u (unused for outputs). */
    double angle(NodeId u) const { return angles_[u]; }

    /** True when node u is an output (left unmeasured). */
    bool isOutput(NodeId u) const { return flow_[u] == invalidNode; }

    /** Causal flow successor f(u); invalidNode for outputs. */
    NodeId flow(NodeId u) const { return flow_[u]; }

    /** Circuit wire this node belongs to. */
    QubitId wire(NodeId u) const { return wires_[u]; }

    /** Measured nodes in temporal (J application) order. */
    const std::vector<NodeId> &measurementOrder() const
    {
        return measurementOrder_;
    }

    /** Output node of each circuit wire. */
    const std::vector<NodeId> &outputs() const { return outputs_; }

    /** Number of circuit wires (logical qubits). */
    int numWires() const { return static_cast<int>(outputs_.size()); }

    // Mutators used by PatternBuilder ------------------------------------
    NodeId addNode(QubitId wire);
    void addEdge(NodeId u, NodeId v) { graph_.addEdge(u, v); }
    void setMeasurement(NodeId u, double theta, NodeId flow_successor);
    void setOutputs(std::vector<NodeId> outputs);

    /** Internal consistency checks (flow, angles, orders). */
    void validate() const;

  private:
    Graph graph_;
    std::vector<double> angles_;
    std::vector<NodeId> flow_;
    std::vector<QubitId> wires_;
    std::vector<NodeId> measurementOrder_;
    std::vector<NodeId> outputs_;
};

} // namespace dcmbqc

#endif // DCMBQC_MBQC_PATTERN_HH
