/**
 * @file
 * Windowed pattern construction over a `CircuitStream`.
 *
 * `buildPatternStreamed` produces a Pattern byte-identical to
 * `buildPattern(transpileToJCz(stream.materialize()))` without ever
 * materializing the gate list or the lowered J/CZ program: gates are
 * lowered window by window through the same per-gate kernel the
 * monolithic transpiler uses (`appendGateJOps`), and graph-state
 * edges are emitted as soon as they are *settled* — once either
 * endpoint of a CZ-toggled pair is retired by a J measurement, no
 * later gate can toggle that pair again, so its final on/off state
 * is known mid-stream. Live state is bounded by the open frontier
 * (one current node per wire plus the still-toggleable edge
 * entries), not by program length.
 *
 * Between windows the builder fires the `WindowCheckpoint`, which is
 * where cancellation, deadlines, and progress observers preempt a
 * multi-million-gate build.
 */

#ifndef DCMBQC_MBQC_STREAMING_BUILDER_HH
#define DCMBQC_MBQC_STREAMING_BUILDER_HH

#include "api/status.hh"
#include "circuit/circuit_stream.hh"
#include "core/stream_window.hh"
#include "mbqc/pattern.hh"

namespace dcmbqc
{

/**
 * Build the measurement pattern of `stream`, ingesting
 * `window.size` gates between checkpoints (0 = whole input as one
 * window; the checkpoint then fires once at the end). The stream is
 * reset before the build.
 *
 * Returns the checkpoint's status unchanged when it aborts the
 * build (Cancelled, DeadlineExceeded). High-water marks are merged
 * into `*stats` when non-null.
 *
 * For every window size and any checkpoint, the returned Pattern is
 * byte-identical to the monolithic
 * `buildPattern(transpileToJCz(...))` on the materialized circuit:
 * node ids, edge order, measurement order, and outputs all match.
 */
Expected<Pattern> buildPatternStreamed(
    CircuitStream &stream, const StreamWindow &window,
    const WindowCheckpoint &checkpoint = {},
    StreamStats *stats = nullptr);

} // namespace dcmbqc

#endif // DCMBQC_MBQC_STREAMING_BUILDER_HH
