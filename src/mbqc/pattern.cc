#include "mbqc/pattern.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dcmbqc
{

NodeId
Pattern::addNode(QubitId wire)
{
    const NodeId id = graph_.addNode();
    angles_.push_back(0.0);
    flow_.push_back(invalidNode);
    wires_.push_back(wire);
    return id;
}

void
Pattern::setMeasurement(NodeId u, double theta, NodeId flow_successor)
{
    DCMBQC_ASSERT(u >= 0 && u < numNodes(), "setMeasurement: bad node");
    DCMBQC_ASSERT(flow_successor >= 0 && flow_successor < numNodes(),
                  "setMeasurement: bad flow successor");
    DCMBQC_ASSERT(flow_[u] == invalidNode, "node measured twice: ", u);
    angles_[u] = theta;
    flow_[u] = flow_successor;
    measurementOrder_.push_back(u);
}

void
Pattern::setOutputs(std::vector<NodeId> outputs)
{
    outputs_ = std::move(outputs);
}

void
Pattern::validate() const
{
    DCMBQC_ASSERT(static_cast<NodeId>(angles_.size()) == numNodes(),
                  "angles size mismatch");
    const NodeId measured =
        static_cast<NodeId>(measurementOrder_.size());
    DCMBQC_ASSERT(measured + static_cast<NodeId>(outputs_.size()) ==
                      numNodes(),
                  "every node must be measured or an output");
    for (NodeId out : outputs_)
        DCMBQC_ASSERT(flow_[out] == invalidNode, "output has flow");
    for (NodeId u : measurementOrder_) {
        DCMBQC_ASSERT(flow_[u] != invalidNode, "measured without flow");
        // The flow successor must be a graph neighbor (flow axiom).
        bool neighbor = false;
        for (const auto &adj : graph_.adjacency(u))
            neighbor |= adj.neighbor == flow_[u];
        DCMBQC_ASSERT(neighbor, "flow successor of ", u,
                      " is not a neighbor");
    }
}

} // namespace dcmbqc
