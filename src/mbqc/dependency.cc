#include "mbqc/dependency.hh"

#include <cmath>

#include "common/logging.hh"

namespace dcmbqc
{

DependencyGraphs
buildDependencyGraphs(const Pattern &pattern)
{
    const NodeId n = pattern.numNodes();
    DependencyGraphs deps{Digraph(n), Digraph(n)};

    for (NodeId m = 0; m < n; ++m) {
        if (pattern.isOutput(m))
            continue;
        const NodeId succ = pattern.flow(m);
        // X correction on the flow successor.
        if (!pattern.isOutput(succ))
            deps.xDeps.addArc(m, succ);
        // Z corrections on the successor's other neighbors.
        for (const auto &adj : pattern.graph().adjacency(succ)) {
            const NodeId j = adj.neighbor;
            if (j == m || pattern.isOutput(j))
                continue;
            deps.zDeps.addArc(m, j);
        }
    }

    DCMBQC_ASSERT(deps.xDeps.isAcyclic(), "X-dependency graph cyclic");
    return deps;
}

bool
isCliffordAngle(double theta)
{
    constexpr double half_pi = 1.57079632679489661923;
    const double ratio = theta / half_pi;
    const double nearest = std::nearbyint(ratio);
    return std::abs(ratio - nearest) < 1e-9;
}

Digraph
realTimeDependencyGraph(const Pattern &pattern)
{
    // X-dependencies follow the causal flow along each wire. A
    // Clifford-angle node needs no adaptation; its own correction
    // folds classically into how its outcome is interpreted, so the
    // real-time chain links consecutive NON-Clifford measurements of
    // the wire (Pauli flow).
    Digraph deps(pattern.numNodes());
    const int wires = pattern.numWires();
    std::vector<NodeId> last_adaptive(wires, invalidNode);

    for (NodeId m : pattern.measurementOrder()) {
        if (isCliffordAngle(pattern.angle(m)))
            continue;
        const QubitId w = pattern.wire(m);
        if (last_adaptive[w] != invalidNode)
            deps.addArc(last_adaptive[w], m);
        last_adaptive[w] = m;
    }

    DCMBQC_ASSERT(deps.isAcyclic(), "real-time deps cyclic");
    return deps;
}

} // namespace dcmbqc
