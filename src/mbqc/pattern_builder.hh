/**
 * @file
 * Translation from a {CZ, J(alpha)} program to a one-way measurement
 * pattern, following the standard J-calculus construction:
 *
 *   J(alpha) on wire w:  E(m, n)  then  M^{-alpha}(m)
 * with m the wire's current node and n a fresh node; the causal flow
 * is f(m) = n. CZ gates add graph edges between current wire nodes
 * (a repeated CZ on the same pair toggles the edge off, CZ^2 = I).
 */

#ifndef DCMBQC_MBQC_PATTERN_BUILDER_HH
#define DCMBQC_MBQC_PATTERN_BUILDER_HH

#include "circuit/circuit.hh"
#include "circuit/transpile.hh"
#include "mbqc/pattern.hh"

namespace dcmbqc
{

/** Build the measurement pattern of a lowered program. */
Pattern buildPattern(const JCircuit &jcircuit);

/** Convenience: transpile then build. */
Pattern buildPattern(const Circuit &circuit);

} // namespace dcmbqc

#endif // DCMBQC_MBQC_PATTERN_BUILDER_HH
