#include "mbqc/streaming_builder.hh"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "circuit/transpile.hh"
#include "common/logging.hh"

namespace dcmbqc
{

namespace
{

/** Key for an undirected node pair (same packing as pattern_builder). */
std::uint64_t
pairKey(NodeId a, NodeId b)
{
    const std::uint64_t lo = static_cast<std::uint32_t>(std::min(a, b));
    const std::uint64_t hi = static_cast<std::uint32_t>(std::max(a, b));
    return (hi << 32) | lo;
}

/**
 * One CZ-toggled pair that has been switched on at least once.
 * Stored in first-toggle-on order, which is exactly the order the
 * monolithic builder's final edge_order scan would emit it in; `on`
 * tracks the current toggle parity in place, so re-toggling never
 * appends a duplicate and the pair keeps its first position.
 */
struct PendingEdge
{
    NodeId a;
    NodeId b;
    bool on;
    bool frozen;
};

/**
 * Incremental core: feeds J/CZ ops one at a time, emits each settled
 * surviving edge the moment it reaches the front of the pending
 * queue (emitting earlier would reorder Graph::addEdge calls and
 * break byte-identity with the monolithic builder).
 */
class SettledPrefixBuilder
{
  public:
    explicit SettledPrefixBuilder(int num_qubits)
        : cur_(static_cast<std::size_t>(num_qubits))
    {
        for (QubitId w = 0; w < num_qubits; ++w)
            cur_[w] = pattern_.addNode(w);
    }

    void
    feed(const JOp &op)
    {
        if (op.kind == JOp::Kind::CZ) {
            toggle(cur_[op.q0], cur_[op.q1]);
            return;
        }
        const NodeId m = cur_[op.q0];
        const NodeId n = pattern_.addNode(op.q0);
        toggle(m, n);
        // J(alpha) measures the old node at -alpha; flow f(m)=n.
        pattern_.setMeasurement(m, -op.angle, n);
        cur_[op.q0] = n;
        // m left the frontier: every pair touching it is settled.
        retire(m);
        drain();
    }

    Pattern
    finish()
    {
        // End of input settles everything still pending.
        for (auto &entry : pending_)
            entry.frozen = true;
        live_keys_.clear();
        node_entries_.clear();
        drain();
        DCMBQC_ASSERT(pending_.empty(),
                      "streaming builder left pending edges");
        pattern_.setOutputs(cur_);
        pattern_.validate();
        return std::move(pattern_);
    }

    std::uint64_t pendingEdges() const { return pending_.size(); }

    std::uint64_t frontierNodes() const { return cur_.size(); }

    /** Rough live-state footprint (frontier + pending indexes). */
    std::uint64_t
    liveBytes() const
    {
        const std::uint64_t map_entry = 64; // node + bucket overhead
        return cur_.size() * sizeof(NodeId) +
               pending_.size() * sizeof(PendingEdge) +
               live_keys_.size() * map_entry +
               node_entries_.size() * map_entry +
               node_positions_ * sizeof(std::uint64_t);
    }

  private:
    void
    toggle(NodeId a, NodeId b)
    {
        const std::uint64_t key = pairKey(a, b);
        auto it = live_keys_.find(key);
        if (it != live_keys_.end()) {
            pending_[it->second - base_].on ^= true;
            return;
        }
        const std::uint64_t pos = base_ + pending_.size();
        live_keys_.emplace(key, pos);
        node_entries_[a].push_back(pos);
        node_entries_[b].push_back(pos);
        node_positions_ += 2;
        pending_.push_back({a, b, true, false});
    }

    void
    retire(NodeId m)
    {
        auto it = node_entries_.find(m);
        if (it == node_entries_.end())
            return;
        for (const std::uint64_t pos : it->second) {
            if (pos < base_)
                continue; // already emitted via the other endpoint
            PendingEdge &entry = pending_[pos - base_];
            if (entry.frozen)
                continue;
            entry.frozen = true;
            live_keys_.erase(pairKey(entry.a, entry.b));
        }
        node_positions_ -= it->second.size();
        node_entries_.erase(it);
    }

    void
    drain()
    {
        while (!pending_.empty() && pending_.front().frozen) {
            const PendingEdge &entry = pending_.front();
            if (entry.on)
                pattern_.addEdge(entry.a, entry.b);
            pending_.pop_front();
            ++base_;
        }
    }

    Pattern pattern_;
    std::vector<NodeId> cur_;

    /** Settled-prefix queue; index of front() is base_. */
    std::deque<PendingEdge> pending_;
    std::uint64_t base_ = 0;

    /** pairKey -> absolute position of the still-toggleable entry. */
    std::unordered_map<std::uint64_t, std::uint64_t> live_keys_;

    /** Frontier node -> positions of its not-yet-frozen entries. */
    std::unordered_map<NodeId, std::vector<std::uint64_t>>
        node_entries_;
    std::uint64_t node_positions_ = 0;
};

} // namespace

Expected<Pattern>
buildPatternStreamed(CircuitStream &stream, const StreamWindow &window,
                     const WindowCheckpoint &checkpoint,
                     StreamStats *stats)
{
    DCMBQC_ASSERT(stream.numQubits() >= 1,
                  "streamed circuit must have at least one qubit");
    stream.reset();

    SettledPrefixBuilder builder(stream.numQubits());
    StreamStats local;

    const std::uint64_t total = stream.totalGates();
    // Ingest chunk: the window when active, else a fixed batch that
    // bounds the scratch gate/op buffers without adding checkpoints.
    const std::size_t chunk =
        window.active() ? window.size : std::size_t{4096};

    std::vector<Gate> gates;
    std::vector<JOp> ops;
    std::uint64_t consumed = 0;
    std::uint32_t window_index = 0;

    for (;;) {
        gates.clear();
        const std::size_t got = stream.next(chunk, gates);
        if (got == 0)
            break;
        for (const Gate &gate : gates) {
            ops.clear();
            appendGateJOps(gate, ops);
            for (const JOp &op : ops)
                builder.feed(op);
        }
        consumed += got;
        local.opsStreamed += got;
        local.pendingEdgePeak =
            std::max(local.pendingEdgePeak, builder.pendingEdges());
        local.frontierNodePeak =
            std::max(local.frontierNodePeak, builder.frontierNodes());
        local.liveBytesPeak =
            std::max(local.liveBytesPeak, builder.liveBytes());
        if (window.active()) {
            ++local.windows;
            if (checkpoint) {
                WindowEvent event;
                event.index = window_index;
                event.settled = consumed;
                event.total = total;
                event.frontierLive = builder.pendingEdges();
                Status status = checkpoint(event);
                if (!status.ok())
                    return status;
            }
            ++window_index;
        }
    }

    if (!window.active()) {
        // Whole input was one window; fire the checkpoint once.
        ++local.windows;
        if (checkpoint) {
            WindowEvent event;
            event.index = 0;
            event.settled = consumed;
            event.total = total;
            event.frontierLive = builder.pendingEdges();
            Status status = checkpoint(event);
            if (!status.ok())
                return status;
        }
    }

    Pattern pattern = builder.finish();
    if (stats != nullptr)
        stats->merge(local);
    return pattern;
}

} // namespace dcmbqc
