/**
 * @file
 * Measurement dependency graphs G' = (V, E') of Section II-A.
 *
 * An arc (i, j) means the measurement basis of j depends on the
 * outcome of i. X-dependencies require real-time adaptation;
 * Z-dependencies flip the interpretation of the outcome (a pi offset
 * in the basis) and are removed from the real-time constraints by
 * signal shifting [13].
 */

#ifndef DCMBQC_MBQC_DEPENDENCY_HH
#define DCMBQC_MBQC_DEPENDENCY_HH

#include "graph/digraph.hh"
#include "mbqc/pattern.hh"

namespace dcmbqc
{

/** X- and Z-dependency graphs of a pattern, derived from its flow. */
struct DependencyGraphs
{
    /** i -> j when j's angle sign depends on s_i (X correction). */
    Digraph xDeps;

    /** i -> j when j's angle offset depends on s_i (Z correction). */
    Digraph zDeps;
};

/**
 * Derive both dependency graphs from the causal flow: measuring i
 * places X^{s_i} on f(i) and Z^{s_i} on N(f(i)) \ {i}. Arcs point
 * only to measured nodes (outputs absorb corrections as byproducts).
 */
DependencyGraphs buildDependencyGraphs(const Pattern &pattern);

/**
 * True when theta is a multiple of pi/2: the measurement is a Pauli
 * measurement, and an X byproduct only flips the sign of a Clifford
 * angle onto an equivalent basis (outcome relabeling), so no
 * real-time adaptation is needed.
 */
bool isCliffordAngle(double theta);

/**
 * The real-time dependency graph: X-dependencies after signal
 * shifting AND Pauli-flow simplification. Z-dependencies are
 * shifted to the end classically [13]; X-dependencies into
 * Clifford-angle (Pauli) measurements are removed, with the
 * dependency transferring through to the next non-Clifford
 * measurement on the wire. Algorithm 1 consumes this graph.
 */
Digraph realTimeDependencyGraph(const Pattern &pattern);

} // namespace dcmbqc

#endif // DCMBQC_MBQC_DEPENDENCY_HH
