#include "mbqc/pattern_builder.hh"

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/logging.hh"

namespace dcmbqc
{

namespace
{

/** Key for an undirected node pair. */
std::uint64_t
pairKey(NodeId a, NodeId b)
{
    const std::uint64_t lo = static_cast<std::uint32_t>(std::min(a, b));
    const std::uint64_t hi = static_cast<std::uint32_t>(std::max(a, b));
    return (hi << 32) | lo;
}

} // namespace

Pattern
buildPattern(const JCircuit &jcircuit)
{
    Pattern pattern;
    std::vector<NodeId> cur(jcircuit.numQubits);
    for (QubitId w = 0; w < jcircuit.numQubits; ++w)
        cur[w] = pattern.addNode(w);

    // CZ edges toggle (CZ^2 = I); J edges are always fresh.
    std::unordered_set<std::uint64_t> edge_set;
    std::vector<std::pair<NodeId, NodeId>> edge_order;

    auto toggle_edge = [&](NodeId a, NodeId b) {
        const std::uint64_t key = pairKey(a, b);
        auto it = edge_set.find(key);
        if (it != edge_set.end()) {
            edge_set.erase(it);
        } else {
            edge_set.insert(key);
            edge_order.emplace_back(a, b);
        }
    };

    for (const auto &op : jcircuit.ops) {
        if (op.kind == JOp::Kind::CZ) {
            toggle_edge(cur[op.q0], cur[op.q1]);
        } else {
            const NodeId m = cur[op.q0];
            const NodeId n = pattern.addNode(op.q0);
            toggle_edge(m, n);
            // J(alpha) measures the old node at -alpha; flow f(m)=n.
            pattern.setMeasurement(m, -op.angle, n);
            cur[op.q0] = n;
        }
    }

    // A pair toggled off and on again appears twice in edge_order;
    // emit each surviving edge exactly once.
    std::unordered_set<std::uint64_t> emitted;
    for (const auto &[a, b] : edge_order) {
        const std::uint64_t key = pairKey(a, b);
        if (edge_set.count(key) && emitted.insert(key).second)
            pattern.addEdge(a, b);
    }

    pattern.setOutputs(cur);
    pattern.validate();
    return pattern;
}

Pattern
buildPattern(const Circuit &circuit)
{
    return buildPattern(transpileToJCz(circuit));
}

} // namespace dcmbqc
