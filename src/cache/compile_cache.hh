/**
 * @file
 * Content-addressed compile cache. Entries are keyed by the 64-bit
 * FNV-1a hash of the serialized (request payload, normalized config,
 * seeds) triple — see cache/cache_key.hh — and hold the serialized
 * compile-report artifact, so a hit replays a previous compilation
 * bit-identically without running any pass.
 *
 * Two tiers:
 *  - an in-memory LRU map bounded by `CacheConfig::capacity`;
 *  - an optional on-disk store (`CacheConfig::diskDir`): every entry
 *    is written as `<dir>/<16-hex-key>.dcmbqc`, a regular artifact
 *    file that `dcmbqc inspect` can open directly. Memory misses
 *    fall through to disk and promote back into the LRU tier.
 *
 * All operations are thread-safe; `CompilerDriver::compileBatch`
 * workers share one instance.
 */

#ifndef DCMBQC_CACHE_COMPILE_CACHE_HH
#define DCMBQC_CACHE_COMPILE_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace dcmbqc
{

/** Tuning knobs of a CompileCache. */
struct CacheConfig
{
    /** Max in-memory entries; 0 means unbounded. */
    std::size_t capacity = 128;

    /** On-disk store directory; empty disables the disk tier. */
    std::string diskDir;
};

/** Monotonic operation counters (snapshot via stats()). */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t diskHits = 0;
    std::uint64_t diskWrites = 0;
};

/** Thread-safe LRU + disk store of serialized compile artifacts. */
class CompileCache
{
  public:
    explicit CompileCache(CacheConfig config = {});

    const CacheConfig &config() const { return config_; }

    /**
     * Fetch the artifact bytes stored under `key`, bumping it to
     * most-recently-used. Falls through to the disk tier on a memory
     * miss. Counts one hit or one miss per call.
     */
    std::optional<std::vector<std::uint8_t>>
    lookup(std::uint64_t key);

    /**
     * Store artifact bytes under `key`, evicting the least recently
     * used entry when over capacity, and mirroring to the disk tier
     * when enabled. Re-inserting an existing key refreshes it.
     */
    void insert(std::uint64_t key, std::vector<std::uint8_t> bytes);

    /**
     * The caller could not use the entry the last lookup returned
     * (undecodable payload, verifier mismatch on a key collision):
     * drop it from both tiers and reclassify that hit as a miss so
     * the counters describe what actually happened.
     */
    void discard(std::uint64_t key);

    /** Counter snapshot. */
    CacheStats stats() const;

    /** Entries currently resident in the memory tier. */
    std::size_t size() const;

    /** Drop the memory tier (the disk store is left untouched). */
    void clear();

    /** `<diskDir>/<16-hex-key>.dcmbqc`; empty when disk disabled. */
    std::string diskPath(std::uint64_t key) const;

  private:
    using Entry = std::pair<std::uint64_t, std::vector<std::uint8_t>>;

    void touch(std::list<Entry>::iterator it);
    void insertLocked(std::uint64_t key,
                      std::vector<std::uint8_t> bytes);

    CacheConfig config_;
    mutable std::mutex mutex_;
    CacheStats stats_;

    /** Front = most recently used. */
    std::list<Entry> lru_;
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator>
        index_;
};

} // namespace dcmbqc

#endif // DCMBQC_CACHE_COMPILE_CACHE_HH
