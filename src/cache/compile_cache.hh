/**
 * @file
 * Content-addressed compile cache. Entries are keyed by the 64-bit
 * FNV-1a hash of the serialized (request payload, normalized config,
 * seeds) triple — see cache/cache_key.hh — and hold the serialized
 * compile-report artifact, so a hit replays a previous compilation
 * bit-identically without running any pass.
 *
 * Two tiers:
 *  - an in-memory LRU map bounded by `CacheConfig::capacity`;
 *  - an optional on-disk store (`CacheConfig::diskDir`): every entry
 *    is written as `<dir>/<2-hex-shard>/<16-hex-key>.dcmbqc` — 256
 *    shards keyed by the top byte of the content address, so a store
 *    holding millions of artifacts never concentrates them in one
 *    directory — and each file is a regular artifact that `dcmbqc
 *    inspect` can open directly. Memory misses fall through to disk
 *    and promote back into the LRU tier; lookups also accept the
 *    pre-shard flat layout (`<dir>/<16-hex-key>.dcmbqc`) so existing
 *    stores keep hitting.
 *
 * All operations are thread-safe; `CompilerDriver::compileBatch`
 * workers and every session of the `dcmbqcd` compile service share
 * one instance.
 */

#ifndef DCMBQC_CACHE_COMPILE_CACHE_HH
#define DCMBQC_CACHE_COMPILE_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace dcmbqc
{

/** Tuning knobs of a CompileCache. */
struct CacheConfig
{
    /** Max in-memory entries; 0 means unbounded. */
    std::size_t capacity = 128;

    /** On-disk store directory; empty disables the disk tier. */
    std::string diskDir;
};

/** Monotonic operation counters (snapshot via stats()). */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t diskHits = 0;
    std::uint64_t diskWrites = 0;
};

/**
 * Offline summary of an on-disk artifact store (sharded and legacy
 * flat files), produced by `CompileCache::scanDiskStore` — this is
 * what `dcmbqc stats --cache-dir` reports when no daemon holds the
 * store hot.
 */
struct DiskStoreStats
{
    /** Artifact files found (sharded + flat). */
    std::uint64_t entries = 0;

    /** Sum of their file sizes in bytes. */
    std::uint64_t totalBytes = 0;

    /** Entries whose envelope header failed to read/validate. */
    std::uint64_t unreadable = 0;

    /** Two-hex-digit shard directories present. */
    int shardDirs = 0;

    /** Entries still in the pre-shard flat layout. */
    std::uint64_t flatEntries = 0;
};

/** Thread-safe LRU + disk store of serialized compile artifacts. */
class CompileCache
{
  public:
    explicit CompileCache(CacheConfig config = {});

    const CacheConfig &config() const { return config_; }

    /**
     * Fetch the artifact bytes stored under `key`, bumping it to
     * most-recently-used. Falls through to the disk tier on a memory
     * miss. Counts one hit or one miss per call.
     */
    std::optional<std::vector<std::uint8_t>>
    lookup(std::uint64_t key);

    /**
     * Store artifact bytes under `key`, evicting the least recently
     * used entry when over capacity, and mirroring to the disk tier
     * when enabled. Re-inserting an existing key refreshes it.
     */
    void insert(std::uint64_t key, std::vector<std::uint8_t> bytes);

    /**
     * The caller could not use the entry the last lookup returned
     * (undecodable payload, verifier mismatch on a key collision):
     * drop it from both tiers and reclassify that hit as a miss so
     * the counters describe what actually happened.
     */
    void discard(std::uint64_t key);

    /** Counter snapshot. */
    CacheStats stats() const;

    /** Entries currently resident in the memory tier. */
    std::size_t size() const;

    /** Drop the memory tier (the disk store is left untouched). */
    void clear();

    /**
     * Sharded store path `<diskDir>/<2-hex>/<16-hex-key>.dcmbqc`;
     * empty when disk disabled.
     */
    std::string diskPath(std::uint64_t key) const;

    /**
     * Pre-shard flat path `<diskDir>/<16-hex-key>.dcmbqc`, accepted
     * on lookup for stores written before sharding; empty when disk
     * disabled.
     */
    std::string legacyDiskPath(std::uint64_t key) const;

    /**
     * Walk an on-disk store (no cache instance needed) and summarize
     * it. A missing directory yields zero entries, not an error.
     */
    static DiskStoreStats scanDiskStore(const std::string &dir);

  private:
    using Entry = std::pair<std::uint64_t, std::vector<std::uint8_t>>;

    void touch(std::list<Entry>::iterator it);
    void insertLocked(std::uint64_t key,
                      std::vector<std::uint8_t> bytes);

    CacheConfig config_;
    mutable std::mutex mutex_;
    CacheStats stats_;

    /** Front = most recently used. */
    std::list<Entry> lru_;
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator>
        index_;
};

} // namespace dcmbqc

#endif // DCMBQC_CACHE_COMPILE_CACHE_HH
