#include "cache/cache_key.hh"

#include "serialize/binary.hh"
#include "serialize/codecs.hh"

namespace dcmbqc
{

namespace
{

/** Gates hashed per chunk when draining a CircuitStream. */
constexpr std::size_t kHashChunkGates = 4096;

} // namespace

CacheKeyPair
computeCacheKey(const CompileRequest &request,
                const DcMbqcConfig &config, bool baseline,
                const NoiseConfig *noise)
{
    const bool stream_entry = request.entryPoint() ==
        CompileRequest::EntryPoint::CircuitStream;

    BinaryWriter writer;
    writer.writeU32(compileCacheEpoch);
    writer.writeU16(artifactFormatVersion);
    writer.writeU8(baseline ? 1 : 0);
    // Stream entries hash under the Circuit tag with the exact
    // encodeCircuit byte layout, so a stream and its materialized
    // circuit share one cache line. Safe to alias: the streamed path
    // is bit-identical to the monolithic one by construction (and by
    // the differential tier-1 tests).
    writer.writeU8(static_cast<std::uint8_t>(
        stream_entry ? CompileRequest::EntryPoint::Circuit
                     : request.entryPoint()));
    switch (request.entryPoint()) {
      case CompileRequest::EntryPoint::Circuit:
        encodeCircuit(writer, request.circuit());
        break;
      case CompileRequest::EntryPoint::CircuitStream:
        // The gates are folded in below, chunk by chunk, so a
        // million-gate stream never materializes its encoded form.
        writer.writeI32(request.stream().numQubits());
        writer.writeString(request.stream().name());
        writer.writeU32(
            static_cast<std::uint32_t>(request.stream().totalGates()));
        break;
      case CompileRequest::EntryPoint::Pattern:
        encodePattern(writer, request.pattern());
        break;
      case CompileRequest::EntryPoint::Graph:
        encodeGraph(writer, request.graph());
        encodeDigraph(writer, request.deps());
        break;
    }

    // FNV-1a over a concatenation equals FNV-1a chained through the
    // pieces with the running hash as the next seed, so the streamed
    // chunked hash below lands on the same value as hashing one flat
    // encodeCircuit buffer.
    CacheKeyPair pair;
    pair.key = fnv1a64(writer.bytes().data(), writer.bytes().size());
    // Independent second hash (different offset basis): one 64-bit
    // collision must not be enough to replay a foreign schedule.
    pair.verifier = fnv1a64(writer.bytes().data(),
                            writer.bytes().size(),
                            0x6c62272e07bb0142ull);
    const auto absorb = [&pair](const BinaryWriter &piece) {
        pair.key = fnv1a64(piece.bytes().data(), piece.bytes().size(),
                           pair.key);
        pair.verifier = fnv1a64(piece.bytes().data(),
                                piece.bytes().size(), pair.verifier);
    };

    if (stream_entry) {
        CircuitStream &stream = request.stream();
        stream.reset();
        std::vector<Gate> gates;
        gates.reserve(kHashChunkGates);
        for (;;) {
            gates.clear();
            if (stream.next(kHashChunkGates, gates) == 0)
                break;
            BinaryWriter chunk;
            for (const Gate &gate : gates) {
                chunk.writeU8(static_cast<std::uint8_t>(gate.kind));
                chunk.writeI32(gate.q0);
                chunk.writeI32(gate.q1);
                chunk.writeI32(gate.q2);
                chunk.writeF64(gate.angle);
            }
            absorb(chunk);
        }
        stream.reset();
    }

    BinaryWriter tail;
    encodeConfig(tail, config);
    if (noise) {
        // Appended (never a zero placeholder) so keys without noise
        // keep their exact pre-noise byte stream and hash.
        tail.writeU8(1);
        encodeNoiseConfig(tail, *noise);
    }
    absorb(tail);
    return pair;
}

} // namespace dcmbqc
