#include "cache/cache_key.hh"

#include "serialize/binary.hh"
#include "serialize/codecs.hh"

namespace dcmbqc
{

CacheKeyPair
computeCacheKey(const CompileRequest &request,
                const DcMbqcConfig &config, bool baseline,
                const NoiseConfig *noise)
{
    BinaryWriter writer;
    writer.writeU32(compileCacheEpoch);
    writer.writeU16(artifactFormatVersion);
    writer.writeU8(baseline ? 1 : 0);
    writer.writeU8(static_cast<std::uint8_t>(request.entryPoint()));
    switch (request.entryPoint()) {
      case CompileRequest::EntryPoint::Circuit:
        encodeCircuit(writer, request.circuit());
        break;
      case CompileRequest::EntryPoint::Pattern:
        encodePattern(writer, request.pattern());
        break;
      case CompileRequest::EntryPoint::Graph:
        encodeGraph(writer, request.graph());
        encodeDigraph(writer, request.deps());
        break;
    }
    encodeConfig(writer, config);
    if (noise) {
        // Appended (never a zero placeholder) so keys without noise
        // keep their exact pre-noise byte stream and hash.
        writer.writeU8(1);
        encodeNoiseConfig(writer, *noise);
    }
    CacheKeyPair pair;
    pair.key = fnv1a64(writer.bytes().data(), writer.bytes().size());
    // Independent second hash (different offset basis): one 64-bit
    // collision must not be enough to replay a foreign schedule.
    pair.verifier = fnv1a64(writer.bytes().data(),
                            writer.bytes().size(),
                            0x6c62272e07bb0142ull);
    return pair;
}

} // namespace dcmbqc
