/**
 * @file
 * Content address of one compilation: the 64-bit FNV-1a hash of the
 * serialized (request payload, normalized config, pipeline flavor)
 * triple. Everything that can change the compiled schedule is in the
 * hash — the full entry-point payload (circuit / pattern /
 * graph+deps), every config field including both stochastic-pass
 * seeds, and whether the baseline or the distributed pipeline runs.
 * The request *label* is deliberately excluded: it is report
 * metadata, and two identically shaped requests must share a cache
 * line regardless of how they are labeled.
 */

#ifndef DCMBQC_CACHE_CACHE_KEY_HH
#define DCMBQC_CACHE_CACHE_KEY_HH

#include <cstdint>

#include "api/request.hh"
#include "core/pipeline.hh"
#include "noise/config.hh"

namespace dcmbqc
{

/**
 * Compilation-semantics epoch mixed into every cache key. Bump this
 * whenever a pass algorithm changes in a way that alters compiled
 * schedules (new scheduler heuristic, different annealing moves...)
 * so persistent disk caches from older binaries miss instead of
 * silently replaying stale schedules. The artifact format version
 * only guards *encoding layout*; this guards *compiler behavior*.
 */
inline constexpr std::uint32_t compileCacheEpoch = 1;

/**
 * The content address of one compile call plus an independent
 * verifier hash over the same serialized triple (different FNV
 * offset basis). The key selects the cache line; the verifier is
 * stored inside the cached artifact and re-checked on every hit so
 * an accidental or constructed 64-bit key collision is detected and
 * treated as a miss instead of replaying the wrong schedule.
 */
struct CacheKeyPair
{
    std::uint64_t key = 0;
    std::uint64_t verifier = 0;
};

/**
 * Compute the content-addressed cache key of one compile call.
 *
 * @param request A *valid* request (the driver hashes only after
 *        request validation succeeds).
 * @param config The normalized config (CompileOptions::build output),
 *        so partition.k aliasing cannot split cache lines.
 * @param baseline True for the monolithic baseline pipeline.
 * @param noise The noise config when (and only when) it affects the
 *        compile (`noiseAffectsCompile`): a non-vacuous config is
 *        part of the compiled schedule's identity, so it is appended
 *        to the hashed stream. Callers pass null for absent *and*
 *        vacuous configs, which therefore alias the noise-free keys
 *        by construction.
 */
CacheKeyPair computeCacheKey(const CompileRequest &request,
                             const DcMbqcConfig &config,
                             bool baseline,
                             const NoiseConfig *noise = nullptr);

} // namespace dcmbqc

#endif // DCMBQC_CACHE_CACHE_KEY_HH
