#include "cache/compile_cache.hh"

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <filesystem>

#include "common/logging.hh"
#include "serialize/artifact.hh"

namespace dcmbqc
{

namespace
{

/** 16-hex-digit, zero-padded key name (stable across platforms). */
std::string
hexKey(std::uint64_t key)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

} // namespace

CompileCache::CompileCache(CacheConfig config)
    : config_(std::move(config))
{
    if (!config_.diskDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(config_.diskDir, ec);
        if (ec) {
            warn("compile cache: cannot create disk store ",
                 config_.diskDir, " (", ec.message(),
                 "); continuing memory-only");
            config_.diskDir.clear();
        }
    }
}

std::string
CompileCache::diskPath(std::uint64_t key) const
{
    if (config_.diskDir.empty())
        return {};
    const std::string hex = hexKey(key);
    // Shard by the top byte (the first two hex digits): FNV output
    // is uniform, so a million-entry store spreads ~4k files per
    // directory instead of one directory with a million.
    return config_.diskDir + "/" + hex.substr(0, 2) + "/" + hex +
        ".dcmbqc";
}

std::string
CompileCache::legacyDiskPath(std::uint64_t key) const
{
    if (config_.diskDir.empty())
        return {};
    return config_.diskDir + "/" + hexKey(key) + ".dcmbqc";
}

void
CompileCache::touch(std::list<Entry>::iterator it)
{
    lru_.splice(lru_.begin(), lru_, it);
}

std::optional<std::vector<std::uint8_t>>
CompileCache::lookup(std::uint64_t key)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = index_.find(key);
        if (it != index_.end()) {
            touch(it->second);
            ++stats_.hits;
            return it->second->second;
        }
        if (config_.diskDir.empty()) {
            ++stats_.misses;
            return std::nullopt;
        }
    }

    // Disk tier. The file read and envelope validation run outside
    // the lock so slow storage never serializes batch workers. A
    // sharded-path miss falls back to the pre-shard flat layout so
    // stores written by older binaries keep hitting.
    std::string path = diskPath(key);
    auto bytes = loadArtifactFile(path);
    if (!bytes.ok()) {
        const std::string legacy = legacyDiskPath(key);
        auto flat = loadArtifactFile(legacy);
        if (flat.ok()) {
            path = legacy;
            bytes = std::move(flat);
        }
    }
    const bool valid = bytes.ok() && openArtifact(*bytes).ok();

    std::lock_guard<std::mutex> lock(mutex_);
    if (!valid) {
        // A readable-but-invalid entry is damage, not a hit:
        // self-heal by dropping the file and report a miss so the
        // caller recompiles and overwrites it.
        if (bytes.ok())
            std::remove(path.c_str());
        ++stats_.misses;
        return std::nullopt;
    }
    ++stats_.hits;
    ++stats_.diskHits;
    // Promote into the memory tier.
    insertLocked(key, *bytes);
    return std::move(bytes.value());
}

void
CompileCache::insertLocked(std::uint64_t key,
                           std::vector<std::uint8_t> bytes)
{
    auto it = index_.find(key);
    if (it != index_.end()) {
        it->second->second = std::move(bytes);
        touch(it->second);
        return;
    }
    lru_.emplace_front(key, std::move(bytes));
    index_[key] = lru_.begin();
    if (config_.capacity > 0 && lru_.size() > config_.capacity) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

void
CompileCache::insert(std::uint64_t key, std::vector<std::uint8_t> bytes)
{
    bool disk_written = false;
    if (!config_.diskDir.empty()) {
        // Write outside the lock; a temp file unique across threads
        // AND processes (pid + counter) plus an atomic rename keeps
        // concurrent writers of the same content-addressed key from
        // tearing each other's files.
        static std::atomic<unsigned> temp_counter{0};
        const std::string path = diskPath(key);
        // Shard directories are created lazily on first write (one
        // mkdir syscall when it already exists).
        std::error_code ec;
        std::filesystem::create_directories(
            std::filesystem::path(path).parent_path(), ec);
        const std::string temp = path + ".tmp" +
            std::to_string(static_cast<long>(::getpid())) + "." +
            std::to_string(temp_counter.fetch_add(1));
        if (saveArtifactFile(temp, bytes).ok() &&
            std::rename(temp.c_str(), path.c_str()) == 0)
            disk_written = true;
        else
            std::remove(temp.c_str());
    }

    std::lock_guard<std::mutex> lock(mutex_);
    if (disk_written)
        ++stats_.diskWrites;
    insertLocked(key, std::move(bytes));
}

void
CompileCache::discard(std::uint64_t key)
{
    std::string path, legacy;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = index_.find(key);
        if (it != index_.end()) {
            lru_.erase(it->second);
            index_.erase(it);
        }
        if (stats_.hits > 0)
            --stats_.hits;
        ++stats_.misses;
        path = diskPath(key);
        legacy = legacyDiskPath(key);
    }
    if (!path.empty())
        std::remove(path.c_str());
    if (!legacy.empty())
        std::remove(legacy.c_str());
}

DiskStoreStats
CompileCache::scanDiskStore(const std::string &dir)
{
    DiskStoreStats stats;
    namespace fs = std::filesystem;
    std::error_code ec;
    if (dir.empty() || !fs::is_directory(dir, ec))
        return stats;

    const auto isShardName = [](const std::string &name) {
        return name.size() == 2 && std::isxdigit(name[0]) &&
            std::isxdigit(name[1]);
    };
    const auto scanFile = [&stats](const fs::path &path, bool flat) {
        if (path.extension() != ".dcmbqc")
            return;
        std::error_code size_ec;
        const auto bytes = fs::file_size(path, size_ec);
        if (size_ec)
            return;
        ++stats.entries;
        stats.totalBytes += bytes;
        if (flat)
            ++stats.flatEntries;
        // Header-only validation: 16-byte envelope prefix, checked
        // for magic/size so a damaged store is visible without
        // reading gigabytes of payloads.
        std::FILE *file = std::fopen(path.c_str(), "rb");
        std::uint8_t header[16];
        const bool read_ok = file &&
            std::fread(header, 1, sizeof(header), file) ==
                sizeof(header);
        if (file)
            std::fclose(file);
        if (!read_ok || header[0] != 'D' || header[1] != 'C' ||
            header[2] != 'M' || header[3] != 'B')
            ++stats.unreadable;
    };

    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_directory(ec)) {
            if (!isShardName(entry.path().filename().string()))
                continue;
            ++stats.shardDirs;
            std::error_code shard_ec;
            for (const auto &file :
                 fs::directory_iterator(entry.path(), shard_ec))
                if (file.is_regular_file(shard_ec))
                    scanFile(file.path(), /*flat=*/false);
        } else if (entry.is_regular_file(ec)) {
            scanFile(entry.path(), /*flat=*/true);
        }
    }
    return stats;
}

CacheStats
CompileCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t
CompileCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
}

void
CompileCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    index_.clear();
}

} // namespace dcmbqc
